//! Structural and behavioural analyses of dual marked graphs.
//!
//! * [`cycles`] — enumeration of simple directed cycles (Johnson's
//!   algorithm), the carriers of the token-preservation invariant.
//! * [`invariants`] — checks of the three algebraic properties of
//!   strongly connected DMGs from Sect. 2.2 of the paper: token
//!   preservation, liveness of the initial marking, repetitive behaviour.
//! * [`reach`] — bounded explicit-state reachability and deadlock search.
//! * [`throughput`] — minimum-cycle-ratio throughput bounds for the lazy
//!   (marked-graph) abstraction, the performance model of the paper's
//!   reference \[8\].

pub mod cycles;
pub mod invariants;
pub mod reach;
pub mod throughput;

pub use cycles::{simple_cycles, Cycle};
pub use invariants::{check_liveness, check_repetitive, check_token_preservation};
pub use reach::{explore, ReachOptions, ReachResult};
pub use throughput::{min_cycle_ratio, CycleRatio};
