//! Bounded explicit-state reachability over DMG markings.
//!
//! The reachability graph of a DMG can be infinite in principle (negative
//! and positive counts are unbounded in pathological graphs), so the
//! exploration is bounded both by a marking-magnitude bound and by a state
//! budget. For the controller-level graphs used in this project the
//! reachable space is small and the bounds are never hit.

use std::collections::{HashMap, VecDeque};

use crate::error::DmgError;
use crate::fire::Enabling;
use crate::graph::{Dmg, NodeId};
use crate::marking::Marking;

/// Options for [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct ReachOptions {
    /// Maximum number of distinct markings to visit before giving up.
    pub max_states: usize,
    /// Markings whose absolute per-arc count exceeds this bound are treated
    /// as out of scope (not expanded); reported separately.
    pub max_tokens_per_arc: i64,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_states: 100_000,
            max_tokens_per_arc: 16,
        }
    }
}

/// Result of a bounded reachability exploration.
#[derive(Debug, Clone)]
pub struct ReachResult {
    /// Distinct markings visited, in BFS discovery order (index 0 is the
    /// initial marking).
    pub states: Vec<Marking>,
    /// For every visited state index, the outgoing transitions as
    /// `(node, rule, successor-state index)`.
    pub transitions: Vec<Vec<(NodeId, Enabling, usize)>>,
    /// Indices of deadlocked states (no node enabled).
    pub deadlocks: Vec<usize>,
    /// Whether some state was cut off by the per-arc token bound.
    pub clipped: bool,
}

impl ReachResult {
    /// Number of distinct markings visited.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Whether any reachable (non-clipped) state deadlocks.
    pub fn has_deadlock(&self) -> bool {
        !self.deadlocks.is_empty()
    }
}

/// Breadth-first exploration of the reachable markings of `g`.
///
/// # Errors
///
/// Returns [`DmgError::StateLimit`] if more than `opts.max_states` distinct
/// markings are discovered.
pub fn explore(g: &Dmg, opts: ReachOptions) -> Result<ReachResult, DmgError> {
    let initial = g.initial_marking();
    let mut index: HashMap<Marking, usize> = HashMap::new();
    let mut states = vec![initial.clone()];
    let mut transitions: Vec<Vec<(NodeId, Enabling, usize)>> = vec![Vec::new()];
    let mut deadlocks = Vec::new();
    let mut clipped = false;
    index.insert(initial, 0);
    let mut queue = VecDeque::from([0usize]);

    while let Some(si) = queue.pop_front() {
        let m = states[si].clone();
        if m.as_slice()
            .iter()
            .any(|&v| v.abs() > opts.max_tokens_per_arc)
        {
            clipped = true;
            continue; // do not expand out-of-scope states
        }
        let enabled = g.enabled_nodes(&m);
        if enabled.is_empty() {
            deadlocks.push(si);
            continue;
        }
        for rec in enabled {
            let mut succ = m.clone();
            g.fire_unchecked(&mut succ, rec.node);
            let ti = match index.get(&succ) {
                Some(&t) => t,
                None => {
                    let t = states.len();
                    if t >= opts.max_states {
                        return Err(DmgError::StateLimit(opts.max_states));
                    }
                    index.insert(succ.clone(), t);
                    states.push(succ);
                    transitions.push(Vec::new());
                    queue.push_back(t);
                    t
                }
            };
            transitions[si].push((rec.node, rec.rule, ti));
        }
    }
    Ok(ReachResult {
        states,
        transitions,
        deadlocks,
        clipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DmgBuilder;

    #[test]
    fn two_ring_reachability() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 1);
        b.arc(y, x, 0);
        let g = b.build().unwrap();
        let r = explore(&g, ReachOptions::default()).unwrap();
        // Token bounces between the two arcs: exactly two markings.
        assert_eq!(r.num_states(), 2);
        assert!(!r.has_deadlock());
        assert!(!r.clipped);
    }

    #[test]
    fn fig1_reachable_space_is_finite_and_deadlock_free() {
        let g = crate::examples::fig1_dmg();
        let r = explore(
            &g,
            ReachOptions {
                max_states: 200_000,
                max_tokens_per_arc: 8,
            },
        )
        .unwrap();
        assert!(r.num_states() > 3, "early firing should open extra states");
        assert!(!r.has_deadlock(), "live SCDMG has no reachable deadlock");
    }

    #[test]
    fn dead_marking_detected() {
        // x -> y with no cycle back and no tokens: immediate deadlock.
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 0);
        // y has no output arcs; x has no inputs. Nothing ever fires...
        // except x, whose preset is empty — our semantics requires a
        // non-empty preset for P-enabling, so this graph is dead.
        let g = b.build().unwrap();
        let r = explore(&g, ReachOptions::default()).unwrap();
        assert!(r.has_deadlock());
        assert_eq!(r.num_states(), 1);
    }

    #[test]
    fn state_limit_enforced() {
        // A source-like ring that accumulates tokens cannot exist in a pure
        // MG (cycles preserve counts), so emulate growth with a small limit.
        let g = crate::examples::fig1_dmg();
        let err = explore(
            &g,
            ReachOptions {
                max_states: 2,
                max_tokens_per_arc: 8,
            },
        )
        .unwrap_err();
        assert_eq!(err, DmgError::StateLimit(2));
    }

    #[test]
    fn reachable_marking_of_fig1b_is_found() {
        // The paper's Fig. 1(b) marking is reached by firing n2, n1, n7.
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        for name in ["n2", "n1", "n7"] {
            let n = g.node_by_name(name).unwrap();
            g.fire(&mut m, n).unwrap();
        }
        let r = explore(
            &g,
            ReachOptions {
                max_states: 200_000,
                max_tokens_per_arc: 8,
            },
        )
        .unwrap();
        assert!(r.states.contains(&m), "Fig. 1(b) marking must be reachable");
    }
}
