//! Checks of the algebraic properties of strongly connected DMGs
//! (paper Sect. 2.2): token preservation, liveness, repetitive behaviour.

use std::collections::HashMap;

use crate::analysis::cycles::{simple_cycles, Cycle};
use crate::error::DmgError;
use crate::exec::{RandomExecutor, SchedulingPolicy};
use crate::graph::{Dmg, NodeId};
use crate::marking::Marking;

/// Outcome of a token-preservation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPreservationReport {
    /// Per-cycle token sums at the initial marking, in the order produced by
    /// [`simple_cycles`].
    pub initial_sums: Vec<i64>,
    /// Number of firings exercised during the check.
    pub steps: usize,
}

/// Verifies that every simple cycle keeps a constant token sum across
/// `steps` random firings from the initial marking.
///
/// This is a *dynamic* check: the property is a theorem of the firing rule,
/// so a failure indicates a bug in the implementation rather than in the
/// model — which is exactly why it makes a good regression test.
///
/// # Errors
///
/// Returns [`DmgError::Empty`] when the graph has no arcs to check.
///
/// # Panics
///
/// Panics if a firing changes the token sum of any cycle — a violation of
/// the marked-graph invariant that can only arise from an implementation
/// bug.
pub fn check_token_preservation(
    g: &Dmg,
    steps: usize,
    seed: u64,
) -> Result<TokenPreservationReport, DmgError> {
    if g.num_arcs() == 0 {
        return Err(DmgError::Empty);
    }
    let (cycles, _) = simple_cycles(g, 10_000);
    let mut m = g.initial_marking();
    let initial_sums: Vec<i64> = cycles.iter().map(|c| c.tokens(&m)).collect();
    let mut exec = RandomExecutor::new(seed, SchedulingPolicy::UniformEnabled);
    let mut done = 0;
    for _ in 0..steps {
        if exec.step(g, &mut m)?.is_none() {
            break; // deadlock: nothing more to exercise
        }
        done += 1;
        for (c, &expect) in cycles.iter().zip(&initial_sums) {
            let got = c.tokens(&m);
            assert_eq!(
                got,
                expect,
                "token preservation violated on a cycle of length {} after {} steps",
                c.len(),
                done
            );
        }
    }
    Ok(TokenPreservationReport {
        initial_sums,
        steps: done,
    })
}

/// Checks liveness of the initial marking of a strongly connected graph:
/// every simple cycle must carry a positive token sum (paper Sect. 2).
///
/// Returns the first unmarked cycle on failure so callers can report it.
///
/// # Errors
///
/// Returns [`DmgError::NotStronglyConnected`] when the structural
/// precondition fails (the theorem is stated for SCMGs only).
pub fn check_liveness(g: &Dmg) -> Result<Result<(), Cycle>, DmgError> {
    if !g.is_strongly_connected() {
        return Err(DmgError::NotStronglyConnected);
    }
    let m = g.initial_marking();
    let (cycles, _) = simple_cycles(g, 100_000);
    for c in cycles {
        if c.tokens(&m) <= 0 {
            return Ok(Err(c));
        }
    }
    Ok(Ok(()))
}

/// Checks repetitive behaviour: a firing sequence in which every node fires
/// the same number of times returns to the starting marking, regardless of
/// the mix of P/N/E firings used (paper Sect. 2.2).
///
/// Runs a random execution for at most `max_steps`, watching the firing
/// count vector; every time the counts are uniform, the marking must equal
/// the initial one. Returns the number of uniform points witnessed.
///
/// # Errors
///
/// Propagates executor errors (none in practice for well-formed graphs).
///
/// # Panics
///
/// Panics if a uniform firing-count vector does not reproduce the initial
/// marking — an implementation bug, not a modelling error.
pub fn check_repetitive(g: &Dmg, max_steps: usize, seed: u64) -> Result<usize, DmgError> {
    let mut counts: HashMap<NodeId, u64> = HashMap::new();
    let mut m = g.initial_marking();
    let initial = m.clone();
    let mut exec = RandomExecutor::new(seed, SchedulingPolicy::UniformEnabled);
    let mut witnessed = 0;
    for _ in 0..max_steps {
        let Some(rec) = exec.step(g, &mut m)? else {
            break;
        };
        *counts.entry(rec.node).or_insert(0) += 1;
        let uniform = counts.len() == g.num_nodes()
            && counts.values().all(|&c| c == counts[&rec.node])
            // all equal to each other:
            && {
                let first = *counts.values().next().expect("counts is non-empty");
                counts.values().all(|&c| c == first)
            };
        if uniform {
            assert_eq!(
                m, initial,
                "repetitive behaviour violated: uniform firing counts did not \
                 restore the initial marking"
            );
            witnessed += 1;
        }
    }
    Ok(witnessed)
}

/// Convenience: asserts the marking `m` is reachable-consistent with `g`'s
/// cycle invariant, i.e. every simple cycle has the same token sum as in the
/// initial marking. Returns `false` (rather than panicking) on mismatch.
pub fn marking_consistent_with_invariant(g: &Dmg, m: &Marking) -> bool {
    let init = g.initial_marking();
    let (cycles, _) = simple_cycles(g, 100_000);
    cycles.iter().all(|c| c.tokens(m) == c.tokens(&init))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DmgBuilder;

    #[test]
    fn fig1_preserves_tokens_over_random_runs() {
        let g = crate::examples::fig1_dmg();
        let report = check_token_preservation(&g, 500, 7).unwrap();
        assert_eq!(report.initial_sums, vec![1, 1, 1]);
        assert!(report.steps > 0);
    }

    #[test]
    fn liveness_holds_for_fig1() {
        let g = crate::examples::fig1_dmg();
        assert!(check_liveness(&g).unwrap().is_ok());
    }

    #[test]
    fn liveness_detects_unmarked_cycle() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 0);
        b.arc(y, x, 0);
        let g = b.build().unwrap();
        let verdict = check_liveness(&g).unwrap();
        assert!(verdict.is_err());
        assert_eq!(verdict.unwrap_err().len(), 2);
    }

    #[test]
    fn liveness_requires_strong_connectivity() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 1);
        let g = b.build().unwrap();
        assert_eq!(
            check_liveness(&g).unwrap_err(),
            DmgError::NotStronglyConnected
        );
    }

    #[test]
    fn repetitive_behaviour_witnessed_on_small_ring() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 1);
        b.arc(y, x, 1);
        let g = b.build().unwrap();
        let witnessed = check_repetitive(&g, 400, 3).unwrap();
        assert!(witnessed > 0, "a 2-ring must revisit its initial marking");
    }

    #[test]
    fn consistency_helper_detects_corruption() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        assert!(marking_consistent_with_invariant(&g, &m));
        m.set_index(0, m.as_slice()[0] + 1);
        assert!(!marking_consistent_with_invariant(&g, &m));
    }
}
