//! Minimum-cycle-ratio throughput bounds for the lazy (marked-graph)
//! abstraction of an elastic system.
//!
//! For a strongly connected marked graph where every node takes one cycle
//! per firing, the sustainable throughput (firings per node per cycle) is
//!
//! ```text
//!            M0(C)
//!   Θ = min ───────
//!        C   d(C)
//! ```
//!
//! over all directed cycles `C`, where `M0(C)` is the token count and `d(C)`
//! the total node delay of the cycle. This is the classic result used by the
//! paper's reference \[8\] to bound the performance of elastic systems
//! without early evaluation; early evaluation can beat the bound because the
//! effective marked graph changes shape per operation.
//!
//! The implementation uses Lawler's parametric binary search with a
//! Bellman–Ford negative-cycle oracle, which runs in `O(E·V·log(1/ε))` and is
//! exact to the tolerance `EPS` (the returned critical cycle is exact).

use crate::analysis::cycles::Cycle;
use crate::error::DmgError;
use crate::graph::{ArcId, Dmg};

/// Tolerance of the binary search on the cycle ratio.
const EPS: f64 = 1e-9;

/// A cycle together with its token/delay ratio.
#[derive(Debug, Clone)]
pub struct CycleRatio {
    /// The critical cycle realizing the minimum ratio.
    pub cycle: Cycle,
    /// Token sum of the cycle at the initial marking.
    pub tokens: i64,
    /// Total delay of the cycle (sum of per-node delays).
    pub delay: u64,
    /// `tokens as f64 / delay as f64` — the throughput bound.
    pub ratio: f64,
}

/// Computes the minimum cycle ratio `min_C M0(C)/d(C)` of a strongly
/// connected graph, with per-node delays `delay[node.index()]`.
///
/// Returns the bound and a critical cycle realizing it.
///
/// # Errors
///
/// * [`DmgError::DelayCount`] if `delays.len() != g.num_nodes()`.
/// * [`DmgError::ZeroDelay`] if any delay is zero (cycle ratios would be
///   unbounded).
/// * [`DmgError::NotStronglyConnected`] if the graph is not strongly
///   connected (the ratio would be ill-defined).
/// * [`DmgError::Empty`] if the graph has no arcs.
///
/// Bad inputs are typed errors rather than panics so multi-threaded
/// experiment workers can surface them instead of aborting a whole
/// campaign.
pub fn min_cycle_ratio(g: &Dmg, delays: &[u64]) -> Result<CycleRatio, DmgError> {
    if delays.len() != g.num_nodes() {
        return Err(DmgError::DelayCount {
            expected: g.num_nodes(),
            found: delays.len(),
        });
    }
    if let Some(zero) = (0..g.num_nodes()).find(|&i| delays[i] == 0) {
        return Err(DmgError::ZeroDelay(crate::graph::NodeId(zero as u32)));
    }
    if g.num_arcs() == 0 {
        return Err(DmgError::Empty);
    }
    if !g.is_strongly_connected() {
        return Err(DmgError::NotStronglyConnected);
    }

    let m0 = g.initial_marking();
    // Arc weight under parameter λ: w(a) = tokens(a) − λ·delay(to(a)).
    // A cycle with Σw < 0 exists iff some cycle has ratio < λ.
    let weight = |a: ArcId, lambda: f64| -> f64 {
        let info = g.arc_info(a);
        m0.get(a) as f64 - lambda * delays[info.to.index()] as f64
    };

    // Upper bound for λ: total tokens / min delay + 1 is safely above any
    // cycle ratio; lower bound: ratios can be negative with anti-tokens.
    let total_tokens: i64 = m0.as_slice().iter().sum();
    let mut hi = (total_tokens.abs() as f64 + 1.0).max(1.0);
    let mut lo = -hi;

    // Negative-cycle detection via Bellman-Ford from a virtual source.
    let has_negative_cycle = |lambda: f64| -> Option<Vec<ArcId>> {
        let n = g.num_nodes();
        let mut dist = vec![0.0f64; n];
        let mut pred: Vec<Option<ArcId>> = vec![None; n];
        let mut changed_node = None;
        for _ in 0..n {
            changed_node = None;
            for a in g.arcs() {
                let info = g.arc_info(a);
                let (u, v) = (info.from.index(), info.to.index());
                let w = weight(a, lambda);
                if dist[u] + w < dist[v] - 1e-15 {
                    dist[v] = dist[u] + w;
                    pred[v] = Some(a);
                    changed_node = Some(v);
                }
            }
            changed_node?;
        }
        // A relaxation in the n-th pass proves a negative cycle; walk back
        // n steps to land on it, then extract it.
        let mut v = changed_node?;
        for _ in 0..n {
            v = g.arc_info(pred[v]?).from.index();
        }
        let start = v;
        let mut arcs_rev = Vec::new();
        let mut cur = start;
        loop {
            let a = pred[cur]?;
            arcs_rev.push(a);
            cur = g.arc_info(a).from.index();
            if cur == start {
                break;
            }
        }
        arcs_rev.reverse();
        Some(arcs_rev)
    };

    let mut witness = None;
    for _ in 0..200 {
        if hi - lo < EPS {
            break;
        }
        let mid = 0.5 * (lo + hi);
        match has_negative_cycle(mid) {
            Some(c) => {
                hi = mid;
                witness = Some(c);
            }
            None => lo = mid,
        }
    }

    // If no negative cycle was ever found the minimum ratio is `hi`'s start
    // (can happen only if the initial hi was below every ratio — prevented
    // by construction), so fall back to probing slightly above `hi`.
    let arcs = match witness {
        Some(w) => w,
        None => has_negative_cycle(hi + 1.0).expect("some cycle must exist in an SCMG"),
    };
    let cycle = cycle_from_arcs(arcs);
    let tokens = cycle.tokens(&m0);
    let delay: u64 = cycle
        .arcs()
        .iter()
        .map(|&a| delays[g.arc_info(a).to.index()])
        .sum();
    Ok(CycleRatio {
        tokens,
        delay,
        ratio: tokens as f64 / delay as f64,
        cycle,
    })
}

fn cycle_from_arcs(arcs: Vec<ArcId>) -> Cycle {
    // `Cycle` has no public constructor to keep its invariant (a closed
    // walk); rebuild through the crate-internal representation.
    crate::analysis::cycles::Cycle::from_arcs_unchecked(arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DmgBuilder;

    fn ring_with_tokens(len: usize, tokens: usize) -> Dmg {
        let mut b = DmgBuilder::new();
        let ns: Vec<_> = (0..len).map(|i| b.node(format!("n{i}"))).collect();
        for i in 0..len {
            b.arc(ns[i], ns[(i + 1) % len], i64::from(i < tokens));
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_ratio_is_tokens_over_length() {
        let g = ring_with_tokens(5, 2);
        let r = min_cycle_ratio(&g, &[1; 5]).unwrap();
        assert!((r.ratio - 0.4).abs() < 1e-6, "ratio {}", r.ratio);
        assert_eq!(r.tokens, 2);
        assert_eq!(r.delay, 5);
    }

    #[test]
    fn critical_cycle_is_the_slowest() {
        // Two cycles sharing a node: one with ratio 1/2, one with 1/4.
        let mut b = DmgBuilder::new();
        let hub = b.node("hub");
        let f1 = b.node("fast");
        let s1 = b.node("s1");
        let s2 = b.node("s2");
        let s3 = b.node("s3");
        b.arc(hub, f1, 1);
        b.arc(f1, hub, 0);
        b.arc(hub, s1, 1);
        b.arc(s1, s2, 0);
        b.arc(s2, s3, 0);
        b.arc(s3, hub, 0);
        let g = b.build().unwrap();
        let r = min_cycle_ratio(&g, &[1; 5]).unwrap();
        assert!((r.ratio - 0.25).abs() < 1e-6);
        assert_eq!(r.cycle.len(), 4);
    }

    #[test]
    fn node_delays_scale_the_bound() {
        let g = ring_with_tokens(3, 1);
        // One node takes 4 cycles: total delay 6, one token -> 1/6.
        let r = min_cycle_ratio(&g, &[4, 1, 1]).unwrap();
        assert!((r.ratio - 1.0 / 6.0).abs() < 1e-6, "ratio {}", r.ratio);
    }

    #[test]
    fn fig1_bound_is_one_quarter() {
        // Every cycle of Fig. 1 has 4 nodes and 1 token.
        let g = crate::examples::fig1_dmg();
        let r = min_cycle_ratio(&g, &vec![1; g.num_nodes()]).unwrap();
        assert!((r.ratio - 0.25).abs() < 1e-6, "ratio {}", r.ratio);
    }

    #[test]
    fn bad_delay_inputs_are_errors_not_panics() {
        // Regression: these used to assert! and abort the process, taking
        // down every worker thread of a sharded campaign with them.
        let g = ring_with_tokens(3, 1);
        assert_eq!(
            min_cycle_ratio(&g, &[1, 1]).unwrap_err(),
            DmgError::DelayCount {
                expected: 3,
                found: 2
            }
        );
        match min_cycle_ratio(&g, &[1, 0, 1]).unwrap_err() {
            DmgError::ZeroDelay(n) => assert_eq!(n.index(), 1),
            other => panic!("expected ZeroDelay, got {other:?}"),
        }
        // Errors survive a worker-thread boundary instead of panicking it.
        let err = std::thread::scope(|s| {
            s.spawn(|| min_cycle_ratio(&g, &[]).unwrap_err())
                .join()
                .expect("worker must not panic")
        });
        assert!(matches!(err, DmgError::DelayCount { found: 0, .. }));
    }

    #[test]
    fn requires_strong_connectivity() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 1);
        let g = b.build().unwrap();
        assert_eq!(
            min_cycle_ratio(&g, &[1, 1]).unwrap_err(),
            DmgError::NotStronglyConnected
        );
    }
}
