//! Enumeration of simple directed cycles via Johnson's algorithm.
//!
//! Cycles matter because they carry the fundamental invariant of marked
//! graphs: no firing changes the token sum of a cycle. All invariant and
//! liveness checks in this crate are phrased over the cycles produced here.

use crate::graph::{ArcId, Dmg};

/// A simple directed cycle, stored as the arc ids traversed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    arcs: Vec<ArcId>,
}

impl Cycle {
    /// The arcs of the cycle in traversal order.
    pub fn arcs(&self) -> &[ArcId] {
        &self.arcs
    }

    /// Number of arcs (equals the number of distinct nodes on the cycle).
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the cycle is empty (never produced by [`simple_cycles`]).
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Token sum of the cycle under marking `m` — `M(φ)` in the paper.
    pub fn tokens(&self, m: &crate::Marking) -> i64 {
        self.arcs.iter().map(|&a| m.get(a)).sum()
    }

    /// Builds a cycle from raw arcs without validating closure.
    ///
    /// Crate-internal: used by analyses that construct cycles they have
    /// already proven closed (e.g. the negative-cycle extractor).
    pub(crate) fn from_arcs_unchecked(arcs: Vec<ArcId>) -> Self {
        Cycle { arcs }
    }
}

/// Enumerates all simple directed cycles of `g`, up to `limit` cycles.
///
/// Uses Johnson's algorithm (1975): for each start node in increasing index
/// order, depth-first search restricted to nodes with index ≥ start, with
/// the blocked-set bookkeeping that makes the enumeration output-polynomial.
/// Parallel arcs are handled (each arc combination yields its own cycle).
///
/// Returns `(cycles, truncated)` where `truncated` reports whether the limit
/// stopped the enumeration early.
pub fn simple_cycles(g: &Dmg, limit: usize) -> (Vec<Cycle>, bool) {
    fn unblock(v: usize, blocked: &mut [bool], block_map: &mut [Vec<usize>]) {
        if !blocked[v] {
            return;
        }
        blocked[v] = false;
        let waiters = std::mem::take(&mut block_map[v]);
        for w in waiters {
            unblock(w, blocked, block_map);
        }
    }

    let n = g.num_nodes();
    let mut cycles = Vec::new();
    let mut truncated = false;

    'starts: for start in 0..n {
        let mut blocked = vec![false; n];
        let mut block_map: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Stack of (node, out-arc cursor) and the arc taken to reach each
        // stack entry past the first.
        let mut path_nodes: Vec<usize> = vec![start];
        let mut path_arcs: Vec<ArcId> = Vec::new();
        let mut cursors: Vec<usize> = vec![0];
        blocked[start] = true;

        // Tracks whether a cycle was closed from each stack frame, to decide
        // between unblocking and deferred blocking on pop.
        let mut found_flags: Vec<bool> = vec![false];

        while let Some(&v) = path_nodes.last() {
            let cursor = *cursors.last().expect("cursors parallels path_nodes");
            let outs = g.out_arcs(crate::NodeId(v as u32));
            if cursor < outs.len() {
                *cursors.last_mut().expect("cursors parallels path_nodes") += 1;
                let arc = outs[cursor];
                let w = g.arc_info(arc).to.index();
                if w < start {
                    continue; // restrict to the sub-graph of indices >= start
                }
                if w == start {
                    // Found a cycle: path_arcs + this closing arc.
                    let mut arcs = path_arcs.clone();
                    arcs.push(arc);
                    cycles.push(Cycle { arcs });
                    *found_flags.last_mut().expect("flags parallel path_nodes") = true;
                    if cycles.len() >= limit {
                        truncated = true;
                        break 'starts;
                    }
                } else if !blocked[w] {
                    blocked[w] = true;
                    path_nodes.push(w);
                    path_arcs.push(arc);
                    cursors.push(0);
                    found_flags.push(false);
                }
            } else {
                // Exhausted v's successors: pop.
                let v_found = found_flags.pop().expect("flags parallel path_nodes");
                path_nodes.pop();
                cursors.pop();
                let popped_arc = path_arcs.pop();
                if v_found {
                    unblock(v, &mut blocked, &mut block_map);
                    if let Some(parent_found) = found_flags.last_mut() {
                        *parent_found = true;
                    }
                } else {
                    // Defer: unblock v only when some successor unblocks.
                    for &a in g.out_arcs(crate::NodeId(v as u32)) {
                        let w = g.arc_info(a).to.index();
                        if w >= start && !block_map[w].contains(&v) {
                            block_map[w].push(v);
                        }
                    }
                }
                let _ = popped_arc;
            }
        }
    }
    (cycles, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DmgBuilder;

    fn ring(k: usize) -> Dmg {
        let mut b = DmgBuilder::new();
        let ns: Vec<_> = (0..k).map(|i| b.node(format!("n{i}"))).collect();
        for i in 0..k {
            b.arc(ns[i], ns[(i + 1) % k], 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_has_one_cycle() {
        let g = ring(5);
        let (cycles, truncated) = simple_cycles(&g, 100);
        assert!(!truncated);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 5);
    }

    #[test]
    fn figure1_graph_has_three_cycles() {
        let g = crate::examples::fig1_dmg();
        let (cycles, truncated) = simple_cycles(&g, 100);
        assert!(!truncated);
        assert_eq!(cycles.len(), 3, "C1, C2, C3 from the paper");
        let mut lens: Vec<_> = cycles.iter().map(Cycle::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![4, 4, 4]);
    }

    #[test]
    fn two_node_double_ring_counts_parallel_structures() {
        // x <-> y with two forward arcs: two distinct cycles through y.
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        b.arc(x, y, 0);
        b.arc(x, y, 0);
        b.arc(y, x, 0);
        let g = b.build().unwrap();
        let (cycles, _) = simple_cycles(&g, 100);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        b.arc(x, x, 1);
        let g = b.build().unwrap();
        let (cycles, _) = simple_cycles(&g, 10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
    }

    #[test]
    fn limit_truncates() {
        // Complete digraph on 5 nodes has many cycles.
        let mut b = DmgBuilder::new();
        let ns: Vec<_> = (0..5).map(|i| b.node(format!("n{i}"))).collect();
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    b.arc(ns[i], ns[j], 0);
                }
            }
        }
        let g = b.build().unwrap();
        let (cycles, truncated) = simple_cycles(&g, 7);
        assert!(truncated);
        assert_eq!(cycles.len(), 7);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        b.arc(x, y, 0);
        b.arc(y, z, 0);
        b.arc(x, z, 0);
        let g = b.build().unwrap();
        let (cycles, truncated) = simple_cycles(&g, 10);
        assert!(cycles.is_empty());
        assert!(!truncated);
    }

    #[test]
    fn cycle_token_sum() {
        let g = ring(3);
        let (cycles, _) = simple_cycles(&g, 10);
        let mut m = g.initial_marking();
        m.set_index(0, 2);
        m.set_index(1, -1);
        assert_eq!(cycles[0].tokens(&m), 1);
    }
}
