use std::fmt;

use crate::graph::ArcId;

/// A marking of a dual marked graph: one signed token count per arc.
///
/// Positive entries are ordinary tokens carrying data forward; negative
/// entries are *anti-tokens* travelling backwards to cancel data that became
/// irrelevant after an early evaluation.
///
/// # Example
///
/// ```
/// use elastic_dmg::Marking;
///
/// let mut m = Marking::zero(3);
/// m.set_index(1, -2);
/// assert_eq!(m.total(), -2);
/// assert_eq!(m.as_slice(), &[0, -2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Marking(Vec<i64>);

impl Marking {
    /// All-zero marking over `num_arcs` arcs.
    pub fn zero(num_arcs: usize) -> Self {
        Marking(vec![0; num_arcs])
    }

    /// Builds a marking from an explicit vector (one entry per arc).
    pub fn from_vec(v: Vec<i64>) -> Self {
        Marking(v)
    }

    /// Number of arcs this marking covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the marking covers zero arcs.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Token count of `arc`.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range for this marking.
    pub fn get(&self, arc: ArcId) -> i64 {
        self.0[arc.index()]
    }

    /// Sets the token count of `arc`.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range for this marking.
    pub fn set(&mut self, arc: ArcId, tokens: i64) {
        self.0[arc.index()] = tokens;
    }

    /// Sets by raw index (useful in tests and property generators).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_index(&mut self, index: usize, tokens: i64) {
        self.0[index] = tokens;
    }

    /// Adds `delta` tokens to `arc` (negative to add anti-tokens).
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range for this marking.
    pub fn add(&mut self, arc: ArcId, delta: i64) {
        self.0[arc.index()] += delta;
    }

    /// Sum of tokens over a subset of arcs — `M(φ)` in the paper.
    pub fn sum<I: IntoIterator<Item = ArcId>>(&self, arcs: I) -> i64 {
        arcs.into_iter().map(|a| self.get(a)).sum()
    }

    /// Sum over all arcs.
    pub fn total(&self) -> i64 {
        self.0.iter().sum()
    }

    /// Number of arcs carrying at least one anti-token.
    pub fn num_negative(&self) -> usize {
        self.0.iter().filter(|&&v| v < 0).count()
    }

    /// Number of arcs carrying at least one positive token.
    pub fn num_positive(&self) -> usize {
        self.0.iter().filter(|&&v| v > 0).count()
    }

    /// Whether every arc is non-negatively marked (an ordinary MG marking).
    pub fn is_nonnegative(&self) -> bool {
        self.0.iter().all(|&v| v >= 0)
    }

    /// Raw view of the per-arc counts in arc-id order.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }
}

impl FromIterator<i64> for Marking {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        Marking(iter.into_iter().collect())
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_marking() {
        let m = Marking::zero(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.total(), 0);
        assert!(m.is_nonnegative());
        assert!(!m.is_empty());
    }

    #[test]
    fn add_and_sum() {
        let mut m = Marking::zero(3);
        m.add(ArcId(0), 2);
        m.add(ArcId(2), -1);
        assert_eq!(m.get(ArcId(0)), 2);
        assert_eq!(m.sum([ArcId(0), ArcId(2)]), 1);
        assert_eq!(m.num_negative(), 1);
        assert_eq!(m.num_positive(), 1);
        assert!(!m.is_nonnegative());
    }

    #[test]
    fn display_is_compact() {
        let m = Marking::from_vec(vec![1, -1, 0]);
        assert_eq!(m.to_string(), "[1 -1 0]");
    }

    #[test]
    fn collect_from_iterator() {
        let m: Marking = (0..3).map(|i| i as i64).collect();
        assert_eq!(m.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn equality_and_hash_for_state_sets() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Marking::from_vec(vec![1, 0]));
        set.insert(Marking::from_vec(vec![1, 0]));
        assert_eq!(set.len(), 1);
    }
}
