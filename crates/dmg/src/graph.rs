use std::fmt;

use crate::error::DmgError;
use crate::marking::Marking;

/// Identifier of a node (transition) in a [`Dmg`].
///
/// Node ids are dense indices assigned in creation order by [`DmgBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an arc (place) in a [`Dmg`].
///
/// Arc ids are dense indices assigned in creation order by [`DmgBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub(crate) u32);

impl NodeId {
    /// Dense index of this node, suitable for indexing per-node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ArcId {
    /// Dense index of this arc, suitable for indexing per-arc tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Endpoints and metadata of one arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArcInfo {
    /// Producing node.
    pub from: NodeId,
    /// Consuming node.
    pub to: NodeId,
    /// Human-readable label used in diagnostics and dumps.
    pub name: String,
}

/// Builder for [`Dmg`] graphs.
///
/// # Example
///
/// ```
/// use elastic_dmg::DmgBuilder;
///
/// # fn main() -> Result<(), elastic_dmg::DmgError> {
/// let mut b = DmgBuilder::new();
/// let n1 = b.early_node("mux");
/// let n2 = b.node("adder");
/// b.arc(n1, n2, 1);
/// b.arc(n2, n1, 0);
/// let dmg = b.build()?;
/// assert_eq!(dmg.num_nodes(), 2);
/// assert!(dmg.is_early(n1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct DmgBuilder {
    names: Vec<String>,
    early: Vec<bool>,
    arcs: Vec<ArcInfo>,
    initial: Vec<i64>,
}

impl DmgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an ordinary (lazy) node and returns its id.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.names.push(name.into());
        self.early.push(false);
        NodeId(self.names.len() as u32 - 1)
    }

    /// Adds an early-enabling node (drawn with a thick bar in the paper).
    pub fn early_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.node(name);
        self.early[id.index()] = true;
        id
    }

    /// Adds an arc from `from` to `to` with `tokens` initial tokens
    /// (may be negative to start with anti-tokens) and returns its id.
    ///
    /// The arc is named `"<from>-><to>"`; use [`DmgBuilder::named_arc`] to
    /// control the label.
    pub fn arc(&mut self, from: NodeId, to: NodeId, tokens: i64) -> ArcId {
        let name = format!(
            "{}->{}",
            self.names
                .get(from.index())
                .map(String::as_str)
                .unwrap_or("?"),
            self.names
                .get(to.index())
                .map(String::as_str)
                .unwrap_or("?")
        );
        self.named_arc(name, from, to, tokens)
    }

    /// Adds an arc with an explicit label.
    pub fn named_arc(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        to: NodeId,
        tokens: i64,
    ) -> ArcId {
        self.arcs.push(ArcInfo {
            from,
            to,
            name: name.into(),
        });
        self.initial.push(tokens);
        ArcId(self.arcs.len() as u32 - 1)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`DmgError::Empty`] for a graph without nodes and
    /// [`DmgError::UnknownNode`] if an arc references a node id that was
    /// never created by this builder.
    pub fn build(self) -> Result<Dmg, DmgError> {
        if self.names.is_empty() {
            return Err(DmgError::Empty);
        }
        let n = self.names.len();
        for info in &self.arcs {
            if info.from.index() >= n {
                return Err(DmgError::UnknownNode(info.from));
            }
            if info.to.index() >= n {
                return Err(DmgError::UnknownNode(info.to));
            }
        }
        let mut in_arcs = vec![Vec::new(); n];
        let mut out_arcs = vec![Vec::new(); n];
        for (i, info) in self.arcs.iter().enumerate() {
            out_arcs[info.from.index()].push(ArcId(i as u32));
            in_arcs[info.to.index()].push(ArcId(i as u32));
        }
        Ok(Dmg {
            names: self.names,
            early: self.early,
            arcs: self.arcs,
            in_arcs,
            out_arcs,
            initial: Marking::from_vec(self.initial),
        })
    }
}

/// A dual marked graph: nodes, arcs, an early-enabling subset of nodes and an
/// initial (possibly negative) marking.
///
/// The structure is immutable after [`DmgBuilder::build`]; markings evolve
/// separately as [`Marking`] values so that many executions can share one
/// graph.
#[derive(Debug, Clone)]
pub struct Dmg {
    names: Vec<String>,
    early: Vec<bool>,
    arcs: Vec<ArcInfo>,
    in_arcs: Vec<Vec<ArcId>>,
    out_arcs: Vec<Vec<ArcId>>,
    initial: Marking,
}

impl Dmg {
    /// Number of nodes (transitions).
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of arcs (places).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Iterator over all arc ids in index order.
    pub fn arcs(&self) -> impl ExactSizeIterator<Item = ArcId> + '_ {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// Name of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this graph.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// Metadata of `arc`.
    ///
    /// # Panics
    ///
    /// Panics if `arc` does not belong to this graph.
    pub fn arc_info(&self, arc: ArcId) -> &ArcInfo {
        &self.arcs[arc.index()]
    }

    /// Looks a node up by name. Names are not required to be unique; the
    /// first match in creation order wins.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// Looks an arc up by label.
    pub fn arc_by_name(&self, name: &str) -> Option<ArcId> {
        self.arcs
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArcId(i as u32))
    }

    /// Incoming arcs of `node` (the preset `•n`).
    pub fn in_arcs(&self, node: NodeId) -> &[ArcId] {
        &self.in_arcs[node.index()]
    }

    /// Outgoing arcs of `node` (the postset `n•`).
    pub fn out_arcs(&self, node: NodeId) -> &[ArcId] {
        &self.out_arcs[node.index()]
    }

    /// Whether `node` belongs to the early-enabling subset `E`.
    pub fn is_early(&self, node: NodeId) -> bool {
        self.early[node.index()]
    }

    /// A fresh copy of the initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// Checks that a marking has one entry per arc.
    ///
    /// # Errors
    ///
    /// Returns [`DmgError::MarkingSize`] on mismatch.
    pub fn check_marking(&self, m: &Marking) -> Result<(), DmgError> {
        if m.len() != self.num_arcs() {
            return Err(DmgError::MarkingSize {
                expected: self.num_arcs(),
                found: m.len(),
            });
        }
        Ok(())
    }

    /// Whether the graph is strongly connected (ignoring markings).
    ///
    /// Elastic systems are modelled as strongly connected DMGs; open systems
    /// close the loop through an environment node.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return false;
        }
        let reaches = |start: usize, forward: bool| -> usize {
            let mut seen = vec![false; n];
            let mut stack = vec![start];
            seen[start] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                let arcs = if forward {
                    &self.out_arcs[v]
                } else {
                    &self.in_arcs[v]
                };
                for &a in arcs {
                    let info = &self.arcs[a.index()];
                    let w = if forward {
                        info.to.index()
                    } else {
                        info.from.index()
                    };
                    if !seen[w] {
                        seen[w] = true;
                        count += 1;
                        stack.push(w);
                    }
                }
            }
            count
        };
        reaches(0, true) == n && reaches(0, false) == n
    }

    /// Renders the marking as a one-line diagnostic string, using `(-k)` for
    /// anti-tokens, matching the paper's circle/anti-circle notation.
    pub fn format_marking(&self, m: &Marking) -> String {
        let mut parts = Vec::new();
        for a in self.arcs() {
            let v = m.get(a);
            if v != 0 {
                parts.push(format!("{}:{}", self.arcs[a.index()].name, v));
            }
        }
        if parts.is_empty() {
            "(empty)".to_string()
        } else {
            parts.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(k: usize) -> Dmg {
        let mut b = DmgBuilder::new();
        let nodes: Vec<_> = (0..k).map(|i| b.node(format!("n{i}"))).collect();
        for i in 0..k {
            b.arc(nodes[i], nodes[(i + 1) % k], i64::from(i == 0));
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = DmgBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        let arc = b.arc(a, c, 2);
        assert_eq!(arc.index(), 0);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.initial_marking().get(arc), 2);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(DmgBuilder::new().build().unwrap_err(), DmgError::Empty);
    }

    #[test]
    fn arc_names_follow_node_names() {
        let mut b = DmgBuilder::new();
        let s = b.node("S");
        let w = b.node("W");
        let a = b.arc(s, w, 0);
        let g = b.build().unwrap();
        assert_eq!(g.arc_info(a).name, "S->W");
        assert_eq!(g.arc_by_name("S->W"), Some(a));
        assert_eq!(g.node_by_name("W"), Some(w));
    }

    #[test]
    fn preset_and_postset() {
        let mut b = DmgBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        let xy = b.arc(x, y, 0);
        let xz = b.arc(x, z, 0);
        let zy = b.arc(z, y, 0);
        let g = b.build().unwrap();
        assert_eq!(g.out_arcs(x), &[xy, xz]);
        assert_eq!(g.in_arcs(y), &[xy, zy]);
        assert_eq!(g.in_arcs(x), &[]);
    }

    #[test]
    fn strong_connectivity() {
        assert!(ring(4).is_strongly_connected());
        let mut b = DmgBuilder::new();
        let a = b.node("a");
        let c = b.node("b");
        b.arc(a, c, 0);
        assert!(!b.build().unwrap().is_strongly_connected());
    }

    #[test]
    fn format_marking_shows_nonzero_entries() {
        let g = ring(3);
        let m = g.initial_marking();
        let s = g.format_marking(&m);
        assert!(s.contains("n0->n1:1"), "{s}");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId(0));
        set.insert(NodeId(1));
        assert!(NodeId(0) < NodeId(1));
        assert_eq!(set.len(), 2);
    }
}
