//! Ready-made DMGs used across tests, examples and the figure-regeneration
//! binaries.

use crate::fire::Enabling;
use crate::graph::{Dmg, DmgBuilder};
use crate::marking::Marking;

/// The dual marked graph of **Fig. 1** of the paper.
///
/// Eight nodes `n1..n8`, one early-enabling node (`n1`), and three simple
/// cycles, each initially carrying one token:
///
/// * `C1 = n1 → n2 → n4 → n7 → n1` (token on `n1→n2`)
/// * `C2 = n1 → n3 → n5 → n7 → n1` (token on `n5→n7`)
/// * `C3 = n1 → n3 → n6 → n8 → n1` (token on `n8→n1`)
///
/// The paper's Fig. 1(b) marking is reached by firing `n2` (P-enabled),
/// `n1` (E-enabled) and `n7` (N-enabled); see [`fig1_firing_sequence`].
///
/// # Example
///
/// ```
/// let g = elastic_dmg::examples::fig1_dmg();
/// assert_eq!(g.num_nodes(), 8);
/// assert!(g.is_strongly_connected());
/// ```
pub fn fig1_dmg() -> Dmg {
    let mut b = DmgBuilder::new();
    let n1 = b.early_node("n1");
    let n2 = b.node("n2");
    let n3 = b.node("n3");
    let n4 = b.node("n4");
    let n5 = b.node("n5");
    let n6 = b.node("n6");
    let n7 = b.node("n7");
    let n8 = b.node("n8");
    // C1
    b.arc(n1, n2, 1);
    b.arc(n2, n4, 0);
    b.arc(n4, n7, 0);
    b.arc(n7, n1, 0);
    // C2 (shares n7->n1)
    b.arc(n1, n3, 0);
    b.arc(n3, n5, 0);
    b.arc(n5, n7, 1);
    // C3 (shares n1->n3)
    b.arc(n3, n6, 0);
    b.arc(n6, n8, 0);
    b.arc(n8, n1, 1);
    b.build().expect("fig. 1 graph is well-formed")
}

/// Replays the paper's Fig. 1 firing sequence (`n2`, `n1`, `n7`) on a fresh
/// initial marking, returning the rules used and the reached marking.
///
/// The rules are exactly `[Positive, Early, Negative]` and the reached
/// marking matches Fig. 1(b): an anti-token on `n4→n7` and positive tokens
/// on `n1→n2`, `n2→n4` and `n1→n3`.
pub fn fig1_firing_sequence() -> (Dmg, Vec<Enabling>, Marking) {
    let g = fig1_dmg();
    let mut m = g.initial_marking();
    let seq = ["n2", "n1", "n7"].map(|n| g.node_by_name(n).expect("node exists"));
    let rules = g
        .fire_sequence(&mut m, seq)
        .expect("paper sequence is fireable");
    (g, rules, m)
}

/// A linear elastic pipeline abstracted as a marked graph ring:
/// `stages` forward arcs carrying `tokens` initial tokens and matching
/// backward arcs carrying the `capacity - tokens` bubbles.
///
/// This is the classic MG abstraction of a buffer chain with per-stage
/// capacity `capacity` (2 for an elastic buffer made of two EHBs); its
/// minimum cycle ratio predicts the lazy pipeline throughput
/// `min(k/N, (capacity·N − k)/N, 1)` for `k` tokens over `N` stages.
///
/// # Panics
///
/// Panics if `stages == 0` or `tokens > stages * capacity`.
pub fn pipeline_ring(stages: usize, tokens: usize, capacity: usize) -> Dmg {
    assert!(stages > 0, "pipeline needs at least one stage");
    assert!(tokens <= stages * capacity, "tokens exceed total capacity");
    let mut b = DmgBuilder::new();
    let ns: Vec<_> = (0..stages).map(|i| b.node(format!("s{i}"))).collect();
    // Distribute tokens round-robin over forward arcs; bubbles over the
    // backward arcs (capacity accounting).
    let mut fwd = vec![0i64; stages];
    for t in 0..tokens {
        fwd[t % stages] += 1;
    }
    for i in 0..stages {
        let j = (i + 1) % stages;
        b.named_arc(format!("f{i}"), ns[i], ns[j], fwd[i]);
        b.named_arc(format!("b{i}"), ns[j], ns[i], capacity as i64 - fwd[i]);
    }
    b.build().expect("ring is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{check_liveness, min_cycle_ratio, simple_cycles};

    #[test]
    fn fig1_matches_paper_structure() {
        let g = fig1_dmg();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_arcs(), 10);
        assert!(g.is_early(g.node_by_name("n1").unwrap()));
        assert!(check_liveness(&g).unwrap().is_ok());
    }

    #[test]
    fn fig1_sequence_uses_p_then_e_then_n() {
        let (_, rules, _) = fig1_firing_sequence();
        assert_eq!(
            rules,
            vec![Enabling::Positive, Enabling::Early, Enabling::Negative]
        );
    }

    #[test]
    fn fig1b_marking_matches_paper() {
        let (g, _, m) = fig1_firing_sequence();
        let arc = |name: &str| g.arc_by_name(name).unwrap();
        assert_eq!(m.get(arc("n1->n2")), 1);
        assert_eq!(m.get(arc("n2->n4")), 1);
        assert_eq!(m.get(arc("n4->n7")), -1, "anti-token from counterflow");
        assert_eq!(m.get(arc("n7->n1")), 0);
        assert_eq!(m.get(arc("n1->n3")), 1);
        assert_eq!(m.get(arc("n5->n7")), 0);
        assert_eq!(m.get(arc("n8->n1")), 0);
    }

    #[test]
    fn fig1_cycle_sums_preserved_by_paper_sequence() {
        let (g, _, m) = fig1_firing_sequence();
        let (cycles, _) = simple_cycles(&g, 100);
        let init = g.initial_marking();
        for c in &cycles {
            assert_eq!(c.tokens(&m), c.tokens(&init));
            assert_eq!(c.tokens(&init), 1, "every cycle starts with one token");
        }
        // The paper calls out C1: two positive tokens and one anti-token.
        let c1: Vec<_> = cycles.iter().filter(|c| c.tokens(&m) == 1).collect();
        assert_eq!(c1.len(), 3);
    }

    #[test]
    fn pipeline_ring_throughput_bound() {
        // 4 stages, 2 tokens, capacity 2: forward ratio 2/4, backward
        // (8-2)/4 > 1 -> bound 0.5.
        let g = pipeline_ring(4, 2, 2);
        let r = min_cycle_ratio(&g, &vec![1; g.num_nodes()]).unwrap();
        assert!((r.ratio - 0.5).abs() < 1e-6);
    }

    #[test]
    fn full_pipeline_is_backpressure_limited() {
        // 4 stages, 7 tokens, capacity 2: bubbles limit at (8-7)/4 = 0.25.
        let g = pipeline_ring(4, 7, 2);
        let r = min_cycle_ratio(&g, &vec![1; g.num_nodes()]).unwrap();
        assert!((r.ratio - 0.25).abs() < 1e-6, "got {}", r.ratio);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overfull_pipeline_panics() {
        let _ = pipeline_ring(2, 5, 2);
    }
}
