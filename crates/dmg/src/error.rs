use std::fmt;

use crate::graph::{ArcId, NodeId};

/// Errors produced while building or executing a dual marked graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmgError {
    /// A node id referenced an index outside the graph.
    UnknownNode(NodeId),
    /// An arc id referenced an index outside the graph.
    UnknownArc(ArcId),
    /// The graph has no nodes, which makes every analysis vacuous.
    Empty,
    /// A node was fired that is not enabled under any of the P/N/E rules.
    NotEnabled(NodeId),
    /// A marking vector had the wrong number of entries for this graph.
    MarkingSize {
        /// Number of entries the graph expects (one per arc).
        expected: usize,
        /// Number of entries that were supplied.
        found: usize,
    },
    /// An analysis requires a strongly connected graph and this one is not.
    NotStronglyConnected,
    /// Bounded state-space exploration hit its configured limit.
    StateLimit(usize),
    /// A per-node delay vector had the wrong number of entries.
    DelayCount {
        /// Number of entries the graph expects (one per node).
        expected: usize,
        /// Number of entries that were supplied.
        found: usize,
    },
    /// A per-node delay was zero (delays must be strictly positive — a
    /// zero-delay node would make cycle ratios unbounded).
    ZeroDelay(NodeId),
    /// A replayed execution pushed an arc marking outside its configured
    /// token/anti-token capacity window — the token-flow signature of a
    /// lost, duplicated or spuriously annihilated token.
    BoundViolation {
        /// The arc whose marking escaped its window.
        arc: ArcId,
        /// The marking the replay reached.
        marking: i64,
        /// Inclusive lower bound (anti-token capacity).
        lo: i64,
        /// Inclusive upper bound (token capacity).
        hi: i64,
        /// Cycle at which the violation was detected.
        cycle: u64,
    },
    /// A fault-tolerance window specification was invalid: an empty
    /// `start >= end` window, or windows supplied out of order.
    ToleranceWindow(String),
}

impl fmt::Display for DmgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmgError::UnknownNode(n) => write!(f, "unknown node id {}", n.index()),
            DmgError::UnknownArc(a) => write!(f, "unknown arc id {}", a.index()),
            DmgError::Empty => write!(f, "graph has no nodes"),
            DmgError::NotEnabled(n) => {
                write!(f, "node {} is not enabled under P, N or E rules", n.index())
            }
            DmgError::MarkingSize { expected, found } => {
                write!(f, "marking has {found} entries, graph has {expected} arcs")
            }
            DmgError::NotStronglyConnected => {
                write!(f, "analysis requires a strongly connected graph")
            }
            DmgError::StateLimit(limit) => {
                write!(
                    f,
                    "state-space exploration exceeded limit of {limit} markings"
                )
            }
            DmgError::DelayCount { expected, found } => {
                write!(
                    f,
                    "delay vector has {found} entries, graph has {expected} nodes"
                )
            }
            DmgError::ZeroDelay(n) => {
                write!(
                    f,
                    "node {} has zero delay; delays must be positive",
                    n.index()
                )
            }
            DmgError::BoundViolation {
                arc,
                marking,
                lo,
                hi,
                cycle,
            } => {
                write!(
                    f,
                    "arc {} marking {marking} escaped [{lo}, {hi}] at cycle {cycle}",
                    arc.index()
                )
            }
            DmgError::ToleranceWindow(msg) => {
                write!(f, "invalid tolerance window: {msg}")
            }
        }
    }
}

impl std::error::Error for DmgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DmgError::MarkingSize {
            expected: 3,
            found: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('2'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_usable() {
        fn takes_err(_: &(dyn std::error::Error + Send + Sync)) {}
        takes_err(&DmgError::Empty);
    }
}
