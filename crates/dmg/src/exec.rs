//! Execution engines for DMGs: deterministic sequences and random policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::DmgError;
use crate::fire::{Enabling, FiringRecord};
use crate::graph::{Dmg, NodeId};
use crate::marking::Marking;

/// How a [`RandomExecutor`] picks among enabled nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// Uniformly random among all enabled nodes (any rule).
    #[default]
    UniformEnabled,
    /// Prefer positively enabled nodes; fall back to N, then E.
    ///
    /// Mirrors a conservative controller that only early-evaluates when
    /// nothing conventional can proceed.
    PositiveFirst,
    /// Prefer early-enabled nodes: an aggressive early-evaluation policy that
    /// maximizes anti-token generation. Useful to stress counterflow paths.
    EarlyFirst,
}

/// A seeded random executor over a DMG.
///
/// # Example
///
/// ```
/// use elastic_dmg::exec::{RandomExecutor, SchedulingPolicy};
///
/// # fn main() -> Result<(), elastic_dmg::DmgError> {
/// let g = elastic_dmg::examples::fig1_dmg();
/// let mut m = g.initial_marking();
/// let mut exec = RandomExecutor::new(42, SchedulingPolicy::UniformEnabled);
/// let trace = exec.run(&g, &mut m, 100)?;
/// assert!(!trace.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RandomExecutor {
    rng: StdRng,
    policy: SchedulingPolicy,
}

impl RandomExecutor {
    /// Creates an executor with a fixed seed (runs are reproducible).
    pub fn new(seed: u64, policy: SchedulingPolicy) -> Self {
        RandomExecutor {
            rng: StdRng::seed_from_u64(seed),
            policy,
        }
    }

    /// Fires one enabled node according to the policy.
    ///
    /// Returns `Ok(None)` when no node is enabled (deadlock — impossible
    /// from a live marking of a strongly connected graph).
    ///
    /// # Errors
    ///
    /// Propagates [`DmgError::MarkingSize`] for mismatched markings.
    pub fn step(&mut self, g: &Dmg, m: &mut Marking) -> Result<Option<FiringRecord>, DmgError> {
        g.check_marking(m)?;
        let enabled = g.enabled_nodes(m);
        if enabled.is_empty() {
            return Ok(None);
        }
        let pick = |cands: &[FiringRecord], rng: &mut StdRng| cands[rng.gen_range(0..cands.len())];
        let chosen = match self.policy {
            SchedulingPolicy::UniformEnabled => pick(&enabled, &mut self.rng),
            SchedulingPolicy::PositiveFirst => {
                let pref: Vec<_> = enabled
                    .iter()
                    .copied()
                    .filter(|r| r.rule == Enabling::Positive)
                    .collect();
                if pref.is_empty() {
                    pick(&enabled, &mut self.rng)
                } else {
                    pick(&pref, &mut self.rng)
                }
            }
            SchedulingPolicy::EarlyFirst => {
                let pref: Vec<_> = enabled
                    .iter()
                    .copied()
                    .filter(|r| r.rule == Enabling::Early)
                    .collect();
                if pref.is_empty() {
                    pick(&enabled, &mut self.rng)
                } else {
                    pick(&pref, &mut self.rng)
                }
            }
        };
        g.fire_unchecked(m, chosen.node);
        Ok(Some(chosen))
    }

    /// Runs up to `steps` firings, returning the trace.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`RandomExecutor::step`].
    pub fn run(
        &mut self,
        g: &Dmg,
        m: &mut Marking,
        steps: usize,
    ) -> Result<Vec<FiringRecord>, DmgError> {
        let mut trace = Vec::new();
        for _ in 0..steps {
            match self.step(g, m)? {
                Some(rec) => trace.push(rec),
                None => break,
            }
        }
        Ok(trace)
    }
}

/// One firing replayed from an external (cycle-accurate) execution, with
/// the enabling rule the cycle-start marking justified. `rule` is `None`
/// when the firing was only enabled up to the intra-cycle timing slack of
/// the circuit implementation (e.g. an eager fork delivering a copy before
/// its join consumed the inputs) — legal, but worth surfacing in exported
/// traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Cycle index of the external execution.
    pub cycle: u64,
    /// The node that fired.
    pub node: NodeId,
    /// Enabling rule at the cycle-start marking, if any held.
    pub rule: Option<Enabling>,
}

/// Checked replay of an externally observed execution onto a DMG — the
/// reference side of the differential fuzz harness.
///
/// A cycle-accurate simulator (behavioural or gate-level) reports which
/// nodes fired in each cycle; the replayer applies the marked-graph firing
/// rule (identical for P/N/E firings, so one `fire` covers tokens moving
/// forward, anti-tokens moving backward and annihilations) and asserts at
/// every cycle boundary that each arc marking stays inside its configured
/// token/anti-token capacity window. Firing-rule conservation makes cycle
/// token sums invariant by construction, so any token the implementation
/// loses, duplicates or spuriously annihilates shows up as an arc marking
/// drifting out of its window.
///
/// The full firing trace is recorded and exportable with
/// [`Replayer::export_trace`] for failure reports.
#[derive(Debug, Clone)]
pub struct Replayer<'g> {
    g: &'g Dmg,
    m: Marking,
    cycle_start: Marking,
    bounds: Vec<(i64, i64)>,
    trace: Vec<TraceStep>,
    cycle: u64,
    /// Cycle windows `[start, end)` in which bound violations are recorded
    /// instead of aborting the replay — fault-injection campaigns expect
    /// the marking to drift while a fault is armed. Sorted, non-empty,
    /// non-overlapping; a fault *process* contributes one window per
    /// disturbance interval (`FaultProcess::merged_windows` in
    /// `elastic_core`).
    tolerate: Vec<(u64, u64)>,
    tolerated_violations: usize,
}

impl<'g> Replayer<'g> {
    /// Creates a replayer at the initial marking. `bounds[arc]` is the
    /// inclusive `(lo, hi)` marking window of each arc: `hi` the token
    /// capacity of the storage the arc abstracts, `lo` the (negative)
    /// anti-token capacity, both widened by whatever intra-cycle slack the
    /// implementation's firing observation points introduce.
    ///
    /// # Errors
    ///
    /// [`DmgError::MarkingSize`] when `bounds` does not have one entry per
    /// arc.
    pub fn new(g: &'g Dmg, bounds: Vec<(i64, i64)>) -> Result<Self, DmgError> {
        if bounds.len() != g.num_arcs() {
            return Err(DmgError::MarkingSize {
                expected: g.num_arcs(),
                found: bounds.len(),
            });
        }
        let m = g.initial_marking();
        Ok(Replayer {
            g,
            cycle_start: m.clone(),
            m,
            bounds,
            trace: Vec::new(),
            cycle: 0,
            tolerate: Vec::new(),
            tolerated_violations: 0,
        })
    }

    /// Suspends bound *enforcement* for cycles in `start..end`: a fault
    /// injected into the replayed execution legitimately pushes arc
    /// markings outside their capacity windows while it is armed (a
    /// duplicated token is one net marking too many, a lost one too few).
    /// Violations inside the window are still *counted*
    /// ([`Self::tolerated_violations`]), so campaigns can report how much
    /// drift the fault caused; violations outside the window abort the
    /// replay as usual — a network that never re-enters its capacity
    /// windows after the window closes is a genuine non-recovery.
    pub fn tolerate_window(&mut self, start: u64, end: u64) {
        self.tolerate = vec![(start, end)];
    }

    /// Declares a whole set of tolerated `[start, end)` windows at once —
    /// the disturbance intervals of a fault *process* re-injecting over the
    /// run. Replaces any previously declared windows.
    ///
    /// # Errors
    ///
    /// [`DmgError::ToleranceWindow`] for an empty window (`start >= end`)
    /// or windows that are unsorted or overlapping — a merged, ordered
    /// interval set is the only unambiguous tolerance specification.
    pub fn tolerate_windows(&mut self, windows: &[(u64, u64)]) -> Result<(), DmgError> {
        for (i, &(s, e)) in windows.iter().enumerate() {
            if s >= e {
                return Err(DmgError::ToleranceWindow(format!(
                    "window {i} [{s}, {e}) is empty"
                )));
            }
            if i > 0 && windows[i - 1].1 > s {
                return Err(DmgError::ToleranceWindow(format!(
                    "window {i} [{s}, {e}) starts before window {} ends at {} — \
                     merge and sort the intervals first",
                    i - 1,
                    windows[i - 1].1
                )));
            }
        }
        self.tolerate = windows.to_vec();
        Ok(())
    }

    /// Bound violations recorded inside the tolerated window.
    pub fn tolerated_violations(&self) -> usize {
        self.tolerated_violations
    }

    /// Replays one firing observed in the current cycle. Firings within a
    /// cycle commute (marking updates are additive), so callers may report
    /// them in any order; bounds are checked at [`Replayer::end_cycle`].
    ///
    /// # Errors
    ///
    /// [`DmgError::UnknownNode`] for a node outside the graph.
    pub fn fire(&mut self, node: NodeId) -> Result<(), DmgError> {
        if node.index() >= self.g.num_nodes() {
            return Err(DmgError::UnknownNode(node));
        }
        let rule = self.g.enabling(&self.cycle_start, node);
        self.g.fire_unchecked(&mut self.m, node);
        self.trace.push(TraceStep {
            cycle: self.cycle,
            node,
            rule,
        });
        Ok(())
    }

    /// Closes the current cycle: checks every arc marking against its
    /// capacity window and advances the cycle counter.
    ///
    /// # Errors
    ///
    /// [`DmgError::BoundViolation`] naming the first arc outside its
    /// window.
    pub fn end_cycle(&mut self) -> Result<(), DmgError> {
        let tolerated = self
            .tolerate
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&self.cycle));
        for a in self.g.arcs() {
            let v = self.m.get(a);
            let (lo, hi) = self.bounds[a.index()];
            if v < lo || v > hi {
                if tolerated {
                    self.tolerated_violations += 1;
                    continue;
                }
                return Err(DmgError::BoundViolation {
                    arc: a,
                    marking: v,
                    lo,
                    hi,
                    cycle: self.cycle,
                });
            }
        }
        self.cycle += 1;
        self.cycle_start = self.m.clone();
        Ok(())
    }

    /// The marking reached so far.
    pub fn marking(&self) -> &Marking {
        &self.m
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The recorded firing trace.
    pub fn trace(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Renders the recorded trace, one line per cycle with activity, e.g.
    /// `"@3 mul:P sink:?"` — `?` marks firings not enabled at the
    /// cycle-start marking (intra-cycle slack). The tail of this export is
    /// the payload of differential-mismatch reports.
    pub fn export_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last: Option<u64> = None;
        for step in &self.trace {
            if last != Some(step.cycle) {
                if last.is_some() {
                    out.push('\n');
                }
                let _ = write!(out, "@{}", step.cycle);
                last = Some(step.cycle);
            }
            let _ = write!(
                out,
                " {}:{}",
                self.g.node_name(step.node),
                step.rule.map_or('?', Enabling::tag)
            );
        }
        out
    }
}

/// Formats a trace as a compact string such as `"n2:P n1:E n7:N"`, handy in
/// test failure messages and the figure-1 demo binary.
pub fn format_trace(g: &Dmg, trace: &[FiringRecord]) -> String {
    trace
        .iter()
        .map(|r| format!("{}:{}", g.node_name(r.node), r.rule.tag()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = crate::examples::fig1_dmg();
        let run = |seed| {
            let mut m = g.initial_marking();
            let mut e = RandomExecutor::new(seed, SchedulingPolicy::UniformEnabled);
            e.run(&g, &mut m, 50).unwrap()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn live_graph_never_deadlocks() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let mut e = RandomExecutor::new(9, SchedulingPolicy::UniformEnabled);
        let trace = e.run(&g, &mut m, 300).unwrap();
        assert_eq!(trace.len(), 300, "live SCDMG must keep firing");
    }

    #[test]
    fn early_first_policy_uses_early_firings() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let mut e = RandomExecutor::new(5, SchedulingPolicy::EarlyFirst);
        let trace = e.run(&g, &mut m, 200).unwrap();
        assert!(
            trace.iter().any(|r| r.rule == Enabling::Early),
            "aggressive policy should exercise early firing"
        );
    }

    #[test]
    fn positive_first_policy_prefers_positive() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let mut e = RandomExecutor::new(5, SchedulingPolicy::PositiveFirst);
        let trace = e.run(&g, &mut m, 200).unwrap();
        let pos = trace
            .iter()
            .filter(|r| r.rule == Enabling::Positive)
            .count();
        assert!(pos * 2 > trace.len(), "most firings should be positive");
    }

    #[test]
    fn replayer_accepts_legal_execution_and_tracks_marking() {
        let g = crate::examples::fig1_dmg();
        let bounds = vec![(-4i64, 4i64); g.num_arcs()];
        let mut rep = Replayer::new(&g, bounds.clone()).unwrap();
        // Drive the replayer from the random executor: any legal execution
        // must replay cleanly and end on the executor's marking.
        let mut m = g.initial_marking();
        let mut exec = RandomExecutor::new(3, SchedulingPolicy::UniformEnabled);
        for _ in 0..40 {
            if let Some(rec) = exec.step(&g, &mut m).unwrap() {
                rep.fire(rec.node).unwrap();
            }
            rep.end_cycle().unwrap();
        }
        assert_eq!(rep.marking(), &m);
        assert_eq!(rep.cycle(), 40);
        assert_eq!(rep.trace().len(), 40);
        // Sequential firings are all rule-classified.
        assert!(rep.trace().iter().all(|s| s.rule.is_some()));
        let dump = rep.export_trace();
        assert!(dump.starts_with("@0 "), "{dump}");
        assert!(dump.lines().count() <= 40);
    }

    #[test]
    fn replayer_flags_token_leak_as_bound_violation() {
        // Firing only the consumer of a ring drains its input arc below the
        // anti-token window — the signature of a component consuming tokens
        // it never received.
        let mut b = crate::graph::DmgBuilder::new();
        let p = b.node("p");
        let c = b.node("c");
        b.arc(p, c, 1);
        b.arc(c, p, 0);
        let g = b.build().unwrap();
        let mut rep = Replayer::new(&g, vec![(-2, 2), (-2, 2)]).unwrap();
        let mut hit = None;
        for _ in 0..6 {
            rep.fire(c).unwrap();
            if let Err(e) = rep.end_cycle() {
                hit = Some(e);
                break;
            }
        }
        match hit {
            Some(DmgError::BoundViolation {
                marking, lo, hi, ..
            }) => {
                assert!(
                    marking < lo || marking > hi,
                    "{marking} outside [{lo}, {hi}]"
                );
            }
            other => panic!("expected a bound violation, got {other:?}"),
        }
    }

    #[test]
    fn replayer_tolerates_violations_only_inside_the_window() {
        // Same token-leaking replay as above, but with the drain cycles
        // declared as an injected-fault window: violations inside it are
        // counted, not fatal; the first violation past the window aborts.
        let mut b = crate::graph::DmgBuilder::new();
        let p = b.node("p");
        let c = b.node("c");
        b.arc(p, c, 1);
        b.arc(c, p, 0);
        let g = b.build().unwrap();
        let mut rep = Replayer::new(&g, vec![(-2, 2), (-2, 2)]).unwrap();
        rep.tolerate_window(0, 6);
        for _ in 0..6 {
            rep.fire(c).unwrap();
            rep.end_cycle().unwrap();
        }
        assert!(rep.tolerated_violations() > 0);
        // Past the window the marking is still out of bounds: fatal now.
        assert!(matches!(
            rep.end_cycle(),
            Err(DmgError::BoundViolation { .. })
        ));
        // A drift that recovers before the window closes replays clean:
        // three drains overshoot the window (one tolerated violation), one
        // refill inside the window restores bounds before it ends.
        let mut rec = Replayer::new(&g, vec![(-2, 2), (-2, 2)]).unwrap();
        rec.tolerate_window(0, 4);
        for _ in 0..3 {
            rec.fire(c).unwrap();
            rec.end_cycle().unwrap();
        }
        for _ in 0..3 {
            rec.fire(p).unwrap();
            rec.end_cycle().unwrap();
        }
        assert_eq!(rec.cycle(), 6);
        assert!(rec.tolerated_violations() > 0);
    }

    #[test]
    fn replayer_tolerates_multiple_disjoint_windows() {
        let mut b = crate::graph::DmgBuilder::new();
        let p = b.node("p");
        let c = b.node("c");
        b.arc(p, c, 1);
        b.arc(c, p, 0);
        let g = b.build().unwrap();
        let mut rep = Replayer::new(&g, vec![(-2, 2), (-2, 2)]).unwrap();
        // A periodic process: two disturbance intervals, quiet in between.
        rep.tolerate_windows(&[(0, 3), (5, 8)]).unwrap();
        // Drain past the bound inside window 0, refill before it closes.
        for _ in 0..3 {
            rep.fire(c).unwrap();
            rep.end_cycle().unwrap();
        }
        for _ in 0..2 {
            rep.fire(p).unwrap();
            rep.end_cycle().unwrap();
        }
        let drift_in_first = rep.tolerated_violations();
        assert!(drift_in_first > 0, "window 0 recorded the drift");
        // Same overshoot inside window 1: tolerated again, not fatal —
        // with the old single-window API the second strike would abort.
        for _ in 0..3 {
            rep.fire(c).unwrap();
            rep.end_cycle().unwrap();
        }
        assert!(rep.tolerated_violations() > drift_in_first);
        // The gap between windows enforces as usual: a replay still out of
        // bounds at cycle 8 (past window 1) is a genuine non-recovery.
        assert!(matches!(
            rep.end_cycle(),
            Err(DmgError::BoundViolation { .. })
        ));
    }

    #[test]
    fn tolerance_window_specs_are_validated() {
        let g = crate::examples::fig1_dmg();
        let mut rep = Replayer::new(&g, vec![(-9, 9); g.num_arcs()]).unwrap();
        assert!(matches!(
            rep.tolerate_windows(&[(3, 3)]),
            Err(DmgError::ToleranceWindow(_))
        ));
        assert!(matches!(
            rep.tolerate_windows(&[(5, 8), (0, 3)]),
            Err(DmgError::ToleranceWindow(_))
        ));
        assert!(matches!(
            rep.tolerate_windows(&[(0, 4), (3, 6)]),
            Err(DmgError::ToleranceWindow(_))
        ));
        rep.tolerate_windows(&[(0, 3), (3, 6)]).unwrap();
    }

    #[test]
    fn replayer_rejects_bad_inputs() {
        let g = crate::examples::fig1_dmg();
        assert!(matches!(
            Replayer::new(&g, vec![(-1, 1)]),
            Err(DmgError::MarkingSize { .. })
        ));
        let mut rep = Replayer::new(&g, vec![(-9, 9); g.num_arcs()]).unwrap();
        let bogus = crate::graph::NodeId(999);
        assert_eq!(rep.fire(bogus).unwrap_err(), DmgError::UnknownNode(bogus));
    }

    #[test]
    fn replayer_marks_slack_firings_in_export() {
        // A firing that is not enabled at the cycle-start marking replays
        // (slack-tolerant) but exports as `?`.
        let g = crate::examples::fig1_dmg();
        let n0 = g
            .nodes()
            .find(|&n| g.enabling(&g.initial_marking(), n).is_none());
        let Some(n0) = n0 else { return };
        let mut rep = Replayer::new(&g, vec![(-99, 99); g.num_arcs()]).unwrap();
        rep.fire(n0).unwrap();
        assert!(rep.trace()[0].rule.is_none());
        assert!(rep.export_trace().contains(":?"));
    }

    #[test]
    fn trace_formatting() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let n2 = g.node_by_name("n2").unwrap();
        let rule = g.fire(&mut m, n2).unwrap();
        let s = format_trace(&g, &[FiringRecord { node: n2, rule }]);
        assert_eq!(s, "n2:P");
    }
}
