//! Execution engines for DMGs: deterministic sequences and random policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::DmgError;
use crate::fire::{Enabling, FiringRecord};
use crate::graph::Dmg;
use crate::marking::Marking;

/// How a [`RandomExecutor`] picks among enabled nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// Uniformly random among all enabled nodes (any rule).
    #[default]
    UniformEnabled,
    /// Prefer positively enabled nodes; fall back to N, then E.
    ///
    /// Mirrors a conservative controller that only early-evaluates when
    /// nothing conventional can proceed.
    PositiveFirst,
    /// Prefer early-enabled nodes: an aggressive early-evaluation policy that
    /// maximizes anti-token generation. Useful to stress counterflow paths.
    EarlyFirst,
}

/// A seeded random executor over a DMG.
///
/// # Example
///
/// ```
/// use elastic_dmg::exec::{RandomExecutor, SchedulingPolicy};
///
/// # fn main() -> Result<(), elastic_dmg::DmgError> {
/// let g = elastic_dmg::examples::fig1_dmg();
/// let mut m = g.initial_marking();
/// let mut exec = RandomExecutor::new(42, SchedulingPolicy::UniformEnabled);
/// let trace = exec.run(&g, &mut m, 100)?;
/// assert!(!trace.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RandomExecutor {
    rng: StdRng,
    policy: SchedulingPolicy,
}

impl RandomExecutor {
    /// Creates an executor with a fixed seed (runs are reproducible).
    pub fn new(seed: u64, policy: SchedulingPolicy) -> Self {
        RandomExecutor {
            rng: StdRng::seed_from_u64(seed),
            policy,
        }
    }

    /// Fires one enabled node according to the policy.
    ///
    /// Returns `Ok(None)` when no node is enabled (deadlock — impossible
    /// from a live marking of a strongly connected graph).
    ///
    /// # Errors
    ///
    /// Propagates [`DmgError::MarkingSize`] for mismatched markings.
    pub fn step(&mut self, g: &Dmg, m: &mut Marking) -> Result<Option<FiringRecord>, DmgError> {
        g.check_marking(m)?;
        let enabled = g.enabled_nodes(m);
        if enabled.is_empty() {
            return Ok(None);
        }
        let pick = |cands: &[FiringRecord], rng: &mut StdRng| cands[rng.gen_range(0..cands.len())];
        let chosen = match self.policy {
            SchedulingPolicy::UniformEnabled => pick(&enabled, &mut self.rng),
            SchedulingPolicy::PositiveFirst => {
                let pref: Vec<_> = enabled
                    .iter()
                    .copied()
                    .filter(|r| r.rule == Enabling::Positive)
                    .collect();
                if pref.is_empty() {
                    pick(&enabled, &mut self.rng)
                } else {
                    pick(&pref, &mut self.rng)
                }
            }
            SchedulingPolicy::EarlyFirst => {
                let pref: Vec<_> = enabled
                    .iter()
                    .copied()
                    .filter(|r| r.rule == Enabling::Early)
                    .collect();
                if pref.is_empty() {
                    pick(&enabled, &mut self.rng)
                } else {
                    pick(&pref, &mut self.rng)
                }
            }
        };
        g.fire_unchecked(m, chosen.node);
        Ok(Some(chosen))
    }

    /// Runs up to `steps` firings, returning the trace.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`RandomExecutor::step`].
    pub fn run(
        &mut self,
        g: &Dmg,
        m: &mut Marking,
        steps: usize,
    ) -> Result<Vec<FiringRecord>, DmgError> {
        let mut trace = Vec::new();
        for _ in 0..steps {
            match self.step(g, m)? {
                Some(rec) => trace.push(rec),
                None => break,
            }
        }
        Ok(trace)
    }
}

/// Formats a trace as a compact string such as `"n2:P n1:E n7:N"`, handy in
/// test failure messages and the figure-1 demo binary.
pub fn format_trace(g: &Dmg, trace: &[FiringRecord]) -> String {
    trace
        .iter()
        .map(|r| format!("{}:{}", g.node_name(r.node), r.rule.tag()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = crate::examples::fig1_dmg();
        let run = |seed| {
            let mut m = g.initial_marking();
            let mut e = RandomExecutor::new(seed, SchedulingPolicy::UniformEnabled);
            e.run(&g, &mut m, 50).unwrap()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn live_graph_never_deadlocks() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let mut e = RandomExecutor::new(9, SchedulingPolicy::UniformEnabled);
        let trace = e.run(&g, &mut m, 300).unwrap();
        assert_eq!(trace.len(), 300, "live SCDMG must keep firing");
    }

    #[test]
    fn early_first_policy_uses_early_firings() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let mut e = RandomExecutor::new(5, SchedulingPolicy::EarlyFirst);
        let trace = e.run(&g, &mut m, 200).unwrap();
        assert!(
            trace.iter().any(|r| r.rule == Enabling::Early),
            "aggressive policy should exercise early firing"
        );
    }

    #[test]
    fn positive_first_policy_prefers_positive() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let mut e = RandomExecutor::new(5, SchedulingPolicy::PositiveFirst);
        let trace = e.run(&g, &mut m, 200).unwrap();
        let pos = trace
            .iter()
            .filter(|r| r.rule == Enabling::Positive)
            .count();
        assert!(pos * 2 > trace.len(), "most firings should be positive");
    }

    #[test]
    fn trace_formatting() {
        let g = crate::examples::fig1_dmg();
        let mut m = g.initial_marking();
        let n2 = g.node_by_name("n2").unwrap();
        let rule = g.fire(&mut m, n2).unwrap();
        let s = format_trace(&g, &[FiringRecord { node: n2, rule }]);
        assert_eq!(s, "n2:P");
    }
}
