//! elint property tests over randomly generated elastic networks.
//!
//! 1. **Lint-clean ⇒ live** — every topology `elastic_core::gen` emits
//!    must produce zero error diagnostics (the generator builds rings
//!    live-by-construction, forks/joins fully wired, counterflow paths
//!    intact), and a lint-clean network must make forward progress in the
//!    behavioural simulator: tokens actually transfer within a short
//!    horizon, i.e. the static liveness verdict is not vacuous.
//! 2. **Token-drop ⇒ E101** — clearing every elastic buffer's initial
//!    token in a ring topology starves each cycle; the analyzer must
//!    flag it (`E101` token-starved cycle) on every such sabotage, the
//!    same sabotage the fuzz campaign's lint oracle injects.
//!
//! Each proptest case fans out over a sub-seed block so a default run
//! (64 cases) sweeps ~5k distinct `TopoParams` samples. Counterexample
//! seeds are pinned in `proptest-regressions/lint.txt` and replayed
//! before the random phase.

use elastic_core::gen::{generate, TopoParams};
use elastic_core::network::{ComponentKind, ElasticNetwork};
use elastic_core::sim::{BehavSim, RandomEnv};
use elastic_lint::lint_network;
use proptest::prelude::*;

/// Sub-seeds swept per proptest case (~5k samples at 64 cases).
const SUB_SEEDS: u64 = 80;
/// Behavioural horizon; sources offer at ≥ 0.6/cycle, so any live
/// topology moves tokens well within this window.
const CYCLES: u64 = 96;

/// Clears every initial token in the network, returning how many were
/// dropped. (Mirrors the fuzz campaign's sabotage; reimplemented here so
/// the property does not share code with the oracle under test.)
fn drop_all_tokens(net: &mut ElasticNetwork) -> usize {
    let tokens: Vec<_> = net
        .components()
        .filter(|&c| {
            matches!(
                net.component(c).kind,
                ComponentKind::Eb {
                    init_token: true,
                    ..
                }
            )
        })
        .collect();
    for &c in &tokens {
        net.set_init_token(c, false)
            .expect("Eb accepts set_init_token");
    }
    tokens.len()
}

proptest! {
    /// Generated topologies lint clean, and the clean verdict is backed
    /// by dynamic evidence: the behavioural sim transfers tokens.
    #[test]
    fn lint_clean_topologies_make_progress(block in 0u64..0x4000_0000) {
        for sub in 0..SUB_SEEDS {
            let topo_seed = block.wrapping_mul(SUB_SEEDS).wrapping_add(sub);
            let Ok(sys) = generate(&TopoParams::sample(topo_seed)) else {
                continue;
            };
            let report = lint_network(&sys.network);
            prop_assert!(
                report.is_clean(),
                "seed {} lints dirty: {}",
                topo_seed,
                report.render_human()
            );
            let mut sim = BehavSim::new(&sys.network).expect("checked network");
            let mut env = RandomEnv::new(topo_seed ^ 0x51_17, sys.env.clone());
            sim.run(&mut env, CYCLES).expect("protocol holds");
            let moved: u64 = sim
                .report()
                .channels
                .iter()
                .map(elastic_core::stats::ChannelStats::total_activity)
                .sum();
            prop_assert!(
                moved > 0,
                "seed {} lint-clean but dead: no channel activity in {} cycles",
                topo_seed,
                CYCLES
            );
        }
    }

    /// Dropping every ring token is always caught as E101.
    #[test]
    fn token_drop_sabotage_trips_e101(block in 0u64..0x4000_0000) {
        let mut sabotaged = 0u32;
        for sub in 0..SUB_SEEDS {
            let topo_seed = block.wrapping_mul(SUB_SEEDS).wrapping_add(sub);
            let params = TopoParams::sample(topo_seed);
            if !params.ring {
                continue;
            }
            let Ok(mut sys) = generate(&params) else {
                continue;
            };
            prop_assert!(drop_all_tokens(&mut sys.network) > 0, "ring without tokens");
            let report = lint_network(&sys.network);
            prop_assert!(
                report.has_code("E101"),
                "seed {} token-drop not caught: {}",
                topo_seed,
                report.render_human()
            );
            sabotaged += 1;
        }
        // ~70% of sampled params are rings; a block that found none
        // would make the property vacuous.
        prop_assert!(sabotaged > 0, "no ring topology in block {}", block);
    }
}

/// The corpus file is actually wired up: the shim must resolve
/// `proptest-regressions/lint.txt` from this test binary's stem.
#[test]
fn regression_corpus_is_loaded() {
    let seeds = proptest::corpus_seeds("lint");
    assert!(
        !seeds.is_empty(),
        "proptest-regressions/lint.txt missing or empty"
    );
}
