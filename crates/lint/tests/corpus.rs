//! Property tests over the benchmark corpus (`elastic_core::corpus`).
//!
//! 1. **Corpus is clean at every knob setting** — every design under every
//!    control configuration, at randomly drawn early-evaluation
//!    probability and slow-latency knobs, must build, pass the structural
//!    `check()`, pass `check_token_liveness()`, lint with zero error
//!    diagnostics, and actually move tokens in the behavioural simulator
//!    (the static verdict is not vacuous).
//! 2. **Token-drop ⇒ starved ring** — clearing every loop-carried initial
//!    token in the designs that have state rings must flip the lint
//!    verdict to dirty (`E101` token-starved cycle), mirroring the
//!    sabotage oracle of `tests/lint.rs` on hand-written rather than
//!    generated topologies.
//!
//! Counterexample seeds are pinned in `proptest-regressions/corpus.txt`
//! and replayed before the random phase.

use elastic_core::corpus::{build, CorpusConfig, Knobs, DESIGNS};
use elastic_core::network::{ComponentKind, ElasticNetwork};
use elastic_core::sim::{BehavSim, RandomEnv};
use elastic_lint::{lint_network, lint_network_with_env};
use proptest::prelude::*;

/// Behavioural horizon: long enough for the slowest knob corner (latency
/// draws up to 23) to push tokens through every design.
const CYCLES: u64 = 400;

/// The corpus designs whose merge sits on a state ring fed by an initial
/// token (the feed-forward designs — `fifo_chain`, `nic_split` — have no
/// cycle to starve).
const RING_DESIGNS: [&str; 4] = ["flow_counter", "rr_arbiter", "mac_loop", "scoreboard"];

/// Clears every elastic buffer's initial token, returning how many were
/// dropped.
fn drop_all_tokens(net: &mut ElasticNetwork) -> usize {
    let tokens: Vec<_> = net
        .components()
        .filter(|&c| {
            matches!(
                net.component(c).kind,
                ComponentKind::Eb {
                    init_token: true,
                    ..
                }
            )
        })
        .collect();
    for &c in &tokens {
        net.set_init_token(c, false)
            .expect("Eb accepts set_init_token");
    }
    tokens.len()
}

proptest! {
    /// Every design x configuration builds, checks, is token-live, lints
    /// clean and makes dynamic progress at arbitrary knob settings.
    #[test]
    fn corpus_lints_clean_and_moves_tokens(
        lat in 2u32..24,
        ee_pct in 0u64..101,
        env_seed in 0u64..0x1_0000_0000,
    ) {
        let knobs = Knobs {
            ee_prob: ee_pct as f64 / 100.0,
            latency: lat,
        };
        for design in DESIGNS {
            for config in CorpusConfig::all() {
                let sys = build(design, config, &knobs).expect("corpus builds at any knobs");
                prop_assert!(
                    sys.network.check().is_ok(),
                    "{design}/{}: structural check failed",
                    config.tag()
                );
                prop_assert!(
                    sys.network.check_token_liveness().is_ok(),
                    "{design}/{}: token liveness failed",
                    config.tag()
                );
                let report = lint_network_with_env(&sys.network, &sys.env);
                prop_assert!(
                    report.errors().count() == 0,
                    "{design}/{} lints dirty at ee={ee_pct}% lat={lat}: {}",
                    config.tag(),
                    report.render_human()
                );
                let mut sim = BehavSim::new(&sys.network).expect("checked network");
                let mut env = RandomEnv::new(env_seed, sys.env.clone());
                sim.run(&mut env, CYCLES).expect("protocol holds");
                let th = sim.report().positive_rate(sys.output_channel);
                prop_assert!(
                    th > 0.0,
                    "{design}/{}: no token reached the output in {CYCLES} cycles \
                     (ee={ee_pct}% lat={lat} seed={env_seed})",
                    config.tag()
                );
            }
        }
    }

    /// Starving the state rings (dropping every initial token) must be
    /// caught statically on every ring design and configuration.
    #[test]
    fn token_drop_starves_ring_designs(lat in 2u32..24, ee_pct in 0u64..101) {
        let knobs = Knobs {
            ee_prob: ee_pct as f64 / 100.0,
            latency: lat,
        };
        for design in RING_DESIGNS {
            for config in CorpusConfig::all() {
                let mut sys = build(design, config, &knobs).expect("corpus builds");
                let dropped = drop_all_tokens(&mut sys.network);
                prop_assert!(
                    dropped > 0,
                    "{design}/{}: expected loop-carried initial tokens",
                    config.tag()
                );
                let report = lint_network(&sys.network);
                prop_assert!(
                    report.errors().count() > 0,
                    "{design}/{}: starved ring not flagged",
                    config.tag()
                );
            }
        }
    }
}
