//! `elint`: a multi-IR static analyzer for elastic networks.
//!
//! Elastic systems in this workspace exist at three levels: the component
//! network ([`elastic_core::network::ElasticNetwork`]), the gate-level
//! netlist it compiles to, and the levelized two-phase instruction tape
//! ([`elastic_netlist::levelize::Program`]) the Monte-Carlo backends
//! execute. Each lowering step has invariants that, when violated, surface
//! as deadlocks or silent data corruption *hours* of simulation later.
//! This crate checks them statically, in two pass groups:
//!
//! * **Network passes** ([`network`]) — token-liveness of every channel
//!   cycle (paper Sect. 2), join/fork arity and early-evaluation guard
//!   validity, anti-token counterflow reachability for early-enabling
//!   inputs, unreachable controllers, and a static throughput bound lint
//!   cross-checked against [`elastic_core::dmg_bridge`].
//! * **Tape passes** ([`tape`]) — translation validation of the levelized
//!   program after peephole optimization: def-before-use per phase,
//!   single assignment, slot/operand-window bounds, dead stores surviving
//!   DCE, and fault-arm columns referenced exactly once.
//!
//! All passes report through one [`Diagnostic`] type with stable codes
//! (`E1xx` network errors, `E2xx` tape errors, `Wxxx` warnings), rendered
//! either human-readable or as JSON by [`LintReport`]. The `elint` binary
//! drives them over the named paper systems and generated topologies; the
//! fuzz campaign (`elastic_bench`) lints every sampled topology before
//! simulating it.
//!
//! # Example
//!
//! ```
//! use elastic_core::network::ElasticNetwork;
//! use elastic_lint::lint_network;
//!
//! let mut net = ElasticNetwork::new("starved");
//! let j = net.add_join("j", 2).unwrap();
//! let f = net.add_fork("f", 2).unwrap();
//! let b = net.add_eb("b", false).unwrap(); // a ring with no initial token
//! let src = net.add_source("src").unwrap();
//! let snk = net.add_sink("snk").unwrap();
//! net.connect(src, 0, j, 0, "in").unwrap();
//! net.connect(j, 0, f, 0, "jf").unwrap();
//! net.connect(f, 0, b, 0, "fb").unwrap();
//! net.connect(b, 0, j, 1, "bj").unwrap();
//! net.connect(f, 1, snk, 0, "out").unwrap();
//!
//! let report = lint_network(&net);
//! assert!(report.has_code("E101")); // token-starved cycle
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::fmt;

pub mod network;
pub mod tape;

pub use network::{lint_network, lint_network_with_env};
pub use tape::lint_program;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the construct is legal but probably not what was meant,
    /// or it caps performance.
    Warning,
    /// The invariant is violated; simulating or shipping this artefact
    /// will deadlock, corrupt data, or waste the run.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E101`, `W301`, ...) — test suites and the fuzz oracle
    /// match on this, never on the message text.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Where: a component, channel, or tape position, in the artefact's
    /// own naming.
    pub site: String,
    /// What is wrong.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, site: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            site: site.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(
        code: &'static str,
        site: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            site: site.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a remediation hint.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.site,
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// The findings of one lint run over one artefact.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps a finding list.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { diagnostics }
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// No errors (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Human-readable rendering, one finding per line (plus help lines),
    /// ending with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// JSON rendering: an array of finding objects (hand-rolled; the
    /// workspace vendors no serde).
    pub fn render_json(&self) -> String {
        let mut s = String::from("[\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let sep = if i + 1 == self.diagnostics.len() {
                ""
            } else {
                ","
            };
            let suggestion = d
                .suggestion
                .as_ref()
                .map_or_else(|| "null".to_string(), |t| json_str(t));
            s.push_str(&format!(
                "  {{\"code\": {}, \"severity\": {}, \"site\": {}, \"message\": {}, \
                 \"suggestion\": {}}}{sep}\n",
                json_str(d.code),
                json_str(d.severity.label()),
                json_str(&d.site),
                json_str(&d.message),
                suggestion,
            ));
        }
        s.push(']');
        s
    }
}

/// JSON string escaping (same rules as the bench crate's reports: the
/// workspace vendors no serde, so each crate that emits JSON carries this
/// ~20-line escaper).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_classifies_and_renders() {
        let report = LintReport::new(vec![
            Diagnostic::error("E101", "ring", "token-starved cycle")
                .with_suggestion("give some buffer an initial token"),
            Diagnostic::warning("W301", "net", "bound 0.5 < 1"),
        ]);
        assert!(!report.is_clean());
        assert!(report.has_code("E101"));
        assert!(report.has_code("W301"));
        assert!(!report.has_code("E999"));
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
        let human = report.render_human();
        assert!(
            human.contains("error[E101] ring: token-starved cycle"),
            "{human}"
        );
        assert!(human.contains("help: give some buffer"), "{human}");
        assert!(human.contains("1 error(s), 1 warning(s)"), "{human}");
        let json = report.render_json();
        assert!(json.contains("\"code\": \"E101\""), "{json}");
        assert!(json.contains("\"suggestion\": null"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
