//! `elint` — static analysis driver for elastic systems.
//!
//! Lints the five named paper systems (Table 1 configurations) and,
//! optionally, a sweep of generated topologies, at every IR level: the
//! component network (token-liveness, arity, counterflow, reachability,
//! throughput bound), then the compiled gate netlist's levelized tapes
//! before and after peephole optimization (translation validation).
//!
//! Usage: `elint [--seed N] [--gen-count N] [--corpus] [--skip-tape]
//! [--json PATH] [--quiet]`
//!
//! `--corpus` additionally lints every benchmark-corpus design
//! (`elastic_core::corpus`) under all five control configurations.
//!
//! Exits 0 when no target produced an error diagnostic, 1 otherwise
//! (warnings never fail the run), 2 on a usage error.

use elastic_core::compile::{compile, CompileOptions};
use elastic_core::corpus::{self, CorpusConfig, Knobs, DESIGNS};
use elastic_core::gen::{generate, TopoParams, GEN_DATA_WIDTH};
use elastic_core::systems::{paper_example, Config};
use elastic_lint::{lint_network_with_env, lint_program, LintReport};
use elastic_netlist::levelize::Program;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, dflt: T) -> T {
    match args.iter().position(|a| a == flag) {
        None => dflt,
        Some(i) => {
            let raw = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            });
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for {flag}: {raw:?}");
                std::process::exit(2);
            })
        }
    }
}

/// One linted target: its name and the merged findings of every pass
/// level that ran on it.
struct Target {
    name: String,
    report: LintReport,
}

/// Network + tape lint of one system. Tape validation compiles the
/// network (control + data rails) and checks the levelized program both
/// raw (strict dependency order) and after the peephole pass.
fn lint_system(
    name: &str,
    net: &elastic_core::network::ElasticNetwork,
    env: &elastic_core::sim::EnvConfig,
    data_width: usize,
    tape: bool,
) -> Target {
    let mut report = lint_network_with_env(net, env);
    if tape && report.is_clean() {
        let opts = CompileOptions {
            lint: false, // network passes above already cover liveness
            data_width,
            nondet_merge: false,
            optimize: false,
            fault: None,
            faults: vec![],
        };
        match compile(net, &opts) {
            Ok(compiled) => {
                match Program::compile(&compiled.netlist) {
                    Ok(p) => report.merge(lint_program(&compiled.netlist, &p, false)),
                    Err(e) => report.diagnostics.push(elastic_lint::Diagnostic::error(
                        "E204",
                        name.to_string(),
                        format!("levelization failed: {e}"),
                    )),
                }
                if let Ok((p, _)) = Program::compile_optimized(&compiled.netlist) {
                    report.merge(lint_program(&compiled.netlist, &p, true));
                }
            }
            Err(e) => report.diagnostics.push(elastic_lint::Diagnostic::error(
                "E102",
                name.to_string(),
                format!("compile failed: {e}"),
            )),
        }
    }
    Target {
        name: name.to_string(),
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = parse_flag(&args, "--seed", 2007);
    let gen_count: usize = parse_flag(&args, "--gen-count", 0);
    let corpus = args.iter().any(|a| a == "--corpus");
    let tape = !args.iter().any(|a| a == "--skip-tape");
    let quiet = args.iter().any(|a| a == "--quiet");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    let mut targets = Vec::new();
    for config in Config::all() {
        let sys = match paper_example(config) {
            Ok(sys) => sys,
            Err(e) => {
                eprintln!("error: building {} failed: {e}", config.label());
                std::process::exit(2);
            }
        };
        targets.push(lint_system(
            config.label(),
            &sys.network,
            &sys.env_config,
            2,
            tape,
        ));
    }
    if corpus {
        for design in DESIGNS {
            for config in CorpusConfig::all() {
                let name = format!("{design}/{}", config.tag());
                match corpus::build(design, config, &Knobs::default()) {
                    Ok(sys) => targets.push(lint_system(
                        &name,
                        &sys.network,
                        &sys.env,
                        sys.data_width,
                        tape,
                    )),
                    Err(e) => {
                        eprintln!("error: building {name} failed: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
    }
    for i in 0..gen_count {
        let topo_seed = seed.wrapping_add(i as u64);
        let params = TopoParams::sample(topo_seed);
        match generate(&params) {
            Ok(sys) => targets.push(lint_system(
                &format!("gen-{topo_seed}"),
                &sys.network,
                &sys.env,
                GEN_DATA_WIDTH,
                tape,
            )),
            Err(e) => targets.push(Target {
                name: format!("gen-{topo_seed}"),
                report: LintReport::new(vec![elastic_lint::Diagnostic::error(
                    "E104",
                    format!("gen-{topo_seed}"),
                    format!("generation failed: {e}"),
                )]),
            }),
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for t in &targets {
        let e = t.report.errors().count();
        let w = t.report.warnings().count();
        errors += e;
        warnings += w;
        if !quiet && (e + w > 0) {
            println!("== {}", t.name);
            print!("{}", t.report.render_human());
        }
    }
    println!(
        "elint: {} target(s), {errors} error(s), {warnings} warning(s)",
        targets.len()
    );

    if let Some(path) = json_path {
        let mut s = String::from("{\n  \"targets\": [\n");
        for (i, t) in targets.iter().enumerate() {
            let sep = if i + 1 == targets.len() { "" } else { "," };
            // Indent the per-target diagnostics array under its object.
            let diags = t.report.render_json().replace('\n', "\n    ");
            s.push_str(&format!(
                "    {{\"name\": {}, \"errors\": {}, \"warnings\": {}, \
                 \"diagnostics\": {diags}}}{sep}\n",
                json_escape(&t.name),
                t.report.errors().count(),
                t.report.warnings().count(),
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"errors\": {errors},\n  \"warnings\": {warnings},\n  \"ok\": {}\n}}\n",
            errors == 0
        ));
        if let Err(e) = std::fs::write(&path, s) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }

    std::process::exit(i32::from(errors > 0));
}

/// Minimal JSON string escaping for target names (always simple labels,
/// but stay correct anyway).
fn json_escape(s: &str) -> String {
    let escaped: String = s
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}
