//! Translation validation of levelized two-phase instruction tapes.
//!
//! [`Program::compile`] lowers a gate netlist into two straight-line
//! tapes (high phase, low phase); `peephole` then rewrites them. These
//! passes re-check the executor-facing invariants *after* the fact, so an
//! optimizer bug surfaces as a diagnostic instead of a wrong Monte-Carlo
//! number:
//!
//! | code | finding |
//! |------|---------|
//! | E201 | def-before-use: an operand read before any write (strict per-tape order pre-peephole; post-peephole, a read of a slot never written anywhere and not input/state/constant) |
//! | E202 | a slot written more than once in one tape |
//! | E203 | dead store surviving DCE (optimized programs only) |
//! | E204 | slot index or N-ary operand window out of bounds |
//! | E205 | fault-arm input column (`fault.<chan>.<rail>`) referenced more or less than once |
//!
//! The pass functions take plain slices, so tests fabricate violations
//! directly instead of needing an API that constructs invalid programs.

use elastic_netlist::levelize::{Instr, Program};
use elastic_netlist::{Gate, Netlist};

use crate::{Diagnostic, LintReport};

/// Runs every tape pass on a compiled program.
///
/// `optimized` states whether `program` went through the peephole pass:
/// the strict per-tape def-before-use order (E201) and the absence of
/// dead stores (E203) hold on different sides of it. Pre-peephole, the
/// levelizer emits strictly dependency-ordered tapes but leaves dead
/// gates in; post-peephole, instructions may legitimately read a slot
/// written later in the cycle (the value wraps from the previous cycle —
/// the DCE's boundary set), but every surviving store must be live.
pub fn lint_program(netlist: &Netlist, program: &Program, optimized: bool) -> LintReport {
    let mut diags = Vec::new();
    let n = program.num_slots();
    let source = source_slots(netlist, n);
    let tapes: [(&str, &[Instr]); 2] = [("high", program.high()), ("low", program.low())];

    for (phase, tape) in tapes {
        check_slot_bounds(phase, tape, program.args(), n, &mut diags);
        check_single_assignment(phase, tape, &mut diags);
        if !optimized {
            check_def_before_use(phase, tape, program.args(), &source, &mut diags);
        }
    }
    // Post-peephole the def-before-use obligation weakens to "no dangling
    // reads": every operand must be a source slot or written *somewhere*.
    if optimized {
        check_dangling_reads(&tapes, program.args(), &source, &mut diags);
        let mut roots: Vec<u32> = Vec::new();
        roots.extend(program.outputs().iter().map(|o| o.index() as u32));
        roots.extend(program.state_nets().iter().map(|s| s.index() as u32));
        for f in program.ffs() {
            roots.push(f.q);
            roots.push(f.d);
        }
        check_dead_stores(&tapes, program.args(), &roots, n, &mut diags);
    }
    check_fault_arms(netlist, program, &mut diags);
    LintReport::new(diags)
}

/// Slots whose value is defined before either tape runs: primary inputs,
/// constants, flip-flop outputs and latches (state written at cycle
/// boundaries / in the opposite phase).
pub fn source_slots(netlist: &Netlist, num_slots: usize) -> Vec<bool> {
    let mut source = vec![false; num_slots];
    for id in netlist.nets() {
        if matches!(
            netlist.gate(id),
            Gate::Input | Gate::Const(_) | Gate::Dff { .. } | Gate::Latch { .. }
        ) {
            source[id.index()] = true;
        }
    }
    source
}

/// E204: every destination and operand slot must index into the slot
/// arena, and every N-ary operand window must lie within the pool.
pub fn check_slot_bounds(
    phase: &str,
    tape: &[Instr],
    args: &[u32],
    num_slots: usize,
    diags: &mut Vec<Diagnostic>,
) {
    for (pc, &instr) in tape.iter().enumerate() {
        if let Instr::AndN { start, len, .. } | Instr::OrN { start, len, .. } = instr {
            if start as usize + len as usize > args.len() {
                diags.push(Diagnostic::error(
                    "E204",
                    format!("{phase}[{pc}]"),
                    format!(
                        "operand window {}..{} exceeds the {}-entry pool",
                        start,
                        start as usize + len as usize,
                        args.len()
                    ),
                ));
                continue; // operands() would index out of bounds
            }
        }
        let mut slots = instr.operands(args);
        slots.push(instr.dst());
        for s in slots {
            if s as usize >= num_slots {
                diags.push(Diagnostic::error(
                    "E204",
                    format!("{phase}[{pc}]"),
                    format!("slot {s} out of range for a {num_slots}-slot program"),
                ));
            }
        }
    }
}

/// E202: the levelizer emits at most one write per slot per tape, and the
/// peephole rewrites preserve that — a duplicate means two instructions
/// race for the same slot.
pub fn check_single_assignment(phase: &str, tape: &[Instr], diags: &mut Vec<Diagnostic>) {
    let mut writer: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (pc, instr) in tape.iter().enumerate() {
        if let Some(first) = writer.insert(instr.dst(), pc) {
            diags.push(Diagnostic::error(
                "E202",
                format!("{phase}[{pc}]"),
                format!(
                    "slot {} is written a second time (first written at {phase}[{first}])",
                    instr.dst()
                ),
            ));
        }
    }
}

/// E201 (strict): within one tape, every operand must be a source slot or
/// written by an earlier instruction of the same tape — the levelizer's
/// dependency-order contract. Only valid pre-peephole.
pub fn check_def_before_use(
    phase: &str,
    tape: &[Instr],
    args: &[u32],
    source: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let mut written = vec![false; source.len()];
    for (pc, &instr) in tape.iter().enumerate() {
        for op in instr.operands(args) {
            let i = op as usize;
            // A LatchEn's self-read (the hold path) is a state read.
            let self_hold = matches!(instr, Instr::LatchEn { dst, .. } if dst == op);
            if i < source.len() && !source[i] && !written[i] && !self_hold {
                diags.push(Diagnostic::error(
                    "E201",
                    format!("{phase}[{pc}]"),
                    format!("slot {op} is read before any write in this tape"),
                ));
            }
        }
        if let Some(w) = written.get_mut(instr.dst() as usize) {
            *w = true;
        }
    }
}

/// E201 (post-peephole form): an operand that is neither a source slot
/// nor written by *either* tape reads its power-up value forever — the
/// constant-folding pass should have removed it, so a surviving read is a
/// translation bug.
pub fn check_dangling_reads(
    tapes: &[(&str, &[Instr])],
    args: &[u32],
    source: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let mut written = vec![false; source.len()];
    for (_, tape) in tapes {
        for instr in *tape {
            if let Some(w) = written.get_mut(instr.dst() as usize) {
                *w = true;
            }
        }
    }
    for (phase, tape) in tapes {
        for (pc, &instr) in tape.iter().enumerate() {
            for op in instr.operands(args) {
                let i = op as usize;
                if i < source.len() && !source[i] && !written[i] {
                    diags.push(Diagnostic::error(
                        "E201",
                        format!("{phase}[{pc}]"),
                        format!("slot {op} is read but never written by either tape"),
                    ));
                }
            }
        }
    }
}

/// E203: order-insensitive liveness from the observation roots (outputs,
/// state, flip-flop captures). Any store whose destination the fixpoint
/// never marks live is dead — the peephole DCE is strictly stronger
/// (order- and phase-aware), so everything it keeps must pass this.
pub fn check_dead_stores(
    tapes: &[(&str, &[Instr])],
    args: &[u32],
    roots: &[u32],
    num_slots: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let mut live = vec![false; num_slots];
    for &r in roots {
        if let Some(l) = live.get_mut(r as usize) {
            *l = true;
        }
    }
    loop {
        let mut changed = false;
        for (_, tape) in tapes {
            for &instr in *tape {
                if live.get(instr.dst() as usize).copied().unwrap_or(false) {
                    for op in instr.operands(args) {
                        if let Some(l) = live.get_mut(op as usize) {
                            if !*l {
                                *l = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (phase, tape) in tapes {
        for (pc, instr) in tape.iter().enumerate() {
            if !live.get(instr.dst() as usize).copied().unwrap_or(false) {
                diags.push(Diagnostic::error(
                    "E203",
                    format!("{phase}[{pc}]"),
                    format!(
                        "dead store to slot {} survived dead-code elimination",
                        instr.dst()
                    ),
                ));
            }
        }
    }
}

/// E205: every fault-arm input column (`fault.<chan>.<rail>`, the
/// injection testbench's arming input) must be referenced exactly once
/// across both tapes — the corruption site XORs it into one rail. Zero
/// references mean the optimizer folded the arm away (the fault can never
/// fire); more than one means the arm fans out beyond its site.
pub fn check_fault_arms(netlist: &Netlist, program: &Program, diags: &mut Vec<Diagnostic>) {
    for &input in program.inputs() {
        let name = netlist.net_name(input);
        if !name.starts_with("fault.") {
            continue;
        }
        let slot = input.index() as u32;
        let mut refs = 0usize;
        for tape in [program.high(), program.low()] {
            for &instr in tape {
                refs += instr
                    .operands(program.args())
                    .iter()
                    .filter(|&&op| op == slot)
                    .count();
            }
        }
        if refs != 1 {
            diags.push(Diagnostic::error(
                "E205",
                name.clone(),
                format!("fault arm referenced {refs} times across both tapes (expected 1)"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_netlist::levelize::Program;
    use elastic_netlist::Netlist;

    /// A small sequential netlist: two inputs, an xor, a flip-flop.
    fn toy() -> Netlist {
        let mut n = Netlist::new("toy");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let q = n.dff_bound(x, false);
        let y = n.and2(q, a);
        n.mark_output(y).unwrap();
        n
    }

    #[test]
    fn clean_program_lints_clean_both_sides() {
        let n = toy();
        let p = Program::compile(&n).unwrap();
        let report = lint_program(&n, &p, false);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        let (p, _) = Program::compile_optimized(&n).unwrap();
        let report = lint_program(&n, &p, true);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn fabricated_use_before_def_trips_e201() {
        // slot 2 = and2(0, 1) but slot 0 is itself computed later and is
        // not a source gate.
        let tape = [
            Instr::And2 { dst: 2, a: 0, b: 1 },
            Instr::Not { dst: 0, src: 1 },
        ];
        let source = vec![false, true, false];
        let mut diags = Vec::new();
        check_def_before_use("high", &tape, &[], &source, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E201");
        assert!(diags[0].site.contains("high[0]"), "{}", diags[0].site);
    }

    #[test]
    fn latch_hold_self_read_is_not_e201() {
        let tape = [Instr::LatchEn {
            dst: 0,
            d: 1,
            en: 2,
        }];
        let source = vec![false, true, true];
        let mut diags = Vec::new();
        check_def_before_use("low", &tape, &[], &source, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn fabricated_double_write_trips_e202() {
        let tape = [
            Instr::Not { dst: 3, src: 0 },
            Instr::Copy { dst: 3, src: 1 },
        ];
        let mut diags = Vec::new();
        check_single_assignment("low", &tape, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E202");
    }

    #[test]
    fn fabricated_dead_store_trips_e203() {
        // slot 5 feeds nothing and is not a root.
        let high: &[Instr] = &[
            Instr::Not { dst: 5, src: 0 },
            Instr::Copy { dst: 3, src: 0 },
        ];
        let low: &[Instr] = &[];
        let mut diags = Vec::new();
        check_dead_stores(&[("high", high), ("low", low)], &[], &[3], 6, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E203");
        assert!(diags[0].message.contains("slot 5"), "{}", diags[0].message);
    }

    #[test]
    fn fabricated_out_of_range_slot_trips_e204() {
        let tape = [Instr::Copy { dst: 9, src: 1 }];
        let mut diags = Vec::new();
        check_slot_bounds("high", &tape, &[], 4, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E204");
        // An N-ary window past the pool end is caught without panicking.
        let tape = [Instr::AndN {
            dst: 0,
            start: 1,
            len: 3,
        }];
        let mut diags = Vec::new();
        check_slot_bounds("low", &tape, &[0, 1], 4, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E204");
    }

    #[test]
    fn post_peephole_def_before_use_violation_trips_e201() {
        // Acceptance sabotage for the tape group: a surviving read of a
        // slot that no tape writes and no source backs. Fabricated
        // directly (Program has no mutators), mirroring what a broken DCE
        // would leave behind.
        let high: &[Instr] = &[Instr::And2 { dst: 3, a: 7, b: 1 }];
        let low: &[Instr] = &[];
        let source = vec![false, true, false, false, false, false, false, false];
        let mut diags = Vec::new();
        check_dangling_reads(&[("high", high), ("low", low)], &[], &source, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E201");
        assert!(diags[0].message.contains("slot 7"), "{}", diags[0].message);
    }

    #[test]
    fn paper_systems_tapes_validate() {
        use elastic_core::compile::{compile, CompileOptions};
        use elastic_core::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let compiled = compile(
                &sys.network,
                &CompileOptions {
                    lint: true,
                    data_width: 2,
                    nondet_merge: false,
                    optimize: false,
                    fault: None,
                    faults: vec![],
                },
            )
            .unwrap();
            let p = Program::compile(&compiled.netlist).unwrap();
            let report = lint_program(&compiled.netlist, &p, false);
            assert!(
                report.diagnostics.is_empty(),
                "{} raw: {}",
                config.label(),
                report.render_human()
            );
            let (p, _) = Program::compile_optimized(&compiled.netlist).unwrap();
            let report = lint_program(&compiled.netlist, &p, true);
            assert!(
                report.diagnostics.is_empty(),
                "{} optimized: {}",
                config.label(),
                report.render_human()
            );
        }
    }

    #[test]
    fn fault_arm_is_referenced_exactly_once() {
        use elastic_core::compile::{compile, CompileOptions, FaultInjection, FaultRail};
        use elastic_core::systems::{paper_example, Config};
        let sys = paper_example(Config::ActiveAntiTokens).unwrap();
        let chan = sys.network.channel(sys.channels.f3_w).name.clone();
        let compiled = compile(
            &sys.network,
            &CompileOptions {
                lint: true,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: Some(FaultInjection::RailFlip {
                    channel: chan,
                    rail: FaultRail::Vp,
                }),
                faults: vec![],
            },
        )
        .unwrap();
        let (p, _) = Program::compile_optimized(&compiled.netlist).unwrap();
        let report = lint_program(&compiled.netlist, &p, true);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        // The arm is a real input of the program.
        assert!(
            p.inputs()
                .iter()
                .any(|&i| compiled.netlist.net_name(i).starts_with("fault.")),
            "fault arm input missing"
        );
    }
}
