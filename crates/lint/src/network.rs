//! Network-level lint passes over [`ElasticNetwork`].
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | E101 | error    | token-starved cycle (deadlocks at power-up, paper Sect. 2) |
//! | E102 | error    | cycle with no elastic buffer (combinational loop after compile) |
//! | E103 | error    | unconnected input/output port |
//! | E104 | error    | degenerate join/fork arity, or an early-evaluation guard that fails validation against its join |
//! | E105 | error    | early-enabling join input whose anti-tokens have nowhere to annihilate (no backward path to a token source or passive boundary) |
//! | E106 | error    | controller not forward-reachable from any token origin (dead logic) |
//! | W201 | warning  | passive channel with no early-evaluation join downstream |
//! | W202 | warning  | single-point-of-failure channel: a lost token on a closed one-token buffer ring is unrecoverable |
//! | W301 | warning  | buffer capacity caps the lazy throughput bound below 1 token/cycle |
//!
//! The passes only use the network's public accessors, so they run on
//! networks in any state of construction — unlike
//! [`ElasticNetwork::check`], an unwired port is a finding (E103), not a
//! precondition failure.

use elastic_core::network::{CompId, ComponentKind, ElasticNetwork};
use elastic_core::sim::EnvConfig;

use crate::{Diagnostic, LintReport};

/// Runs every structural network pass (E101–E106, W201, W202).
///
/// [`lint_network_with_env`] additionally runs the throughput-bound pass,
/// which needs the environment's latency distributions.
pub fn lint_network(net: &ElasticNetwork) -> LintReport {
    let mut diags = Vec::new();
    check_unconnected_ports(net, &mut diags);
    check_arity(net, &mut diags);
    check_bufferless_cycles(net, &mut diags);
    check_token_liveness(net, &mut diags);
    check_counterflow_paths(net, &mut diags);
    check_reachability(net, &mut diags);
    check_passive_utility(net, &mut diags);
    check_single_point_of_failure(net, &mut diags);
    LintReport::new(diags)
}

/// Runs [`lint_network`] plus the W301 static throughput lint, which
/// cross-checks buffer capacities against the min-cycle-ratio bound of
/// [`elastic_core::dmg_bridge`].
pub fn lint_network_with_env(net: &ElasticNetwork, env: &EnvConfig) -> LintReport {
    let mut report = lint_network(net);
    check_throughput_bound(net, env, &mut report.diagnostics);
    report
}

/// E103: every declared port must be wired to a channel.
fn check_unconnected_ports(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    for c in net.components() {
        let comp = net.component(c);
        for port in 0..comp.kind.num_inputs() {
            if net.input_channel(c, port).is_none() {
                diags.push(Diagnostic::error(
                    "E103",
                    comp.name.clone(),
                    format!("input port {port} is unconnected"),
                ));
            }
        }
        for port in 0..comp.kind.num_outputs() {
            if net.output_channel(c, port).is_none() {
                diags.push(Diagnostic::error(
                    "E103",
                    comp.name.clone(),
                    format!("output port {port} is unconnected"),
                ));
            }
        }
    }
}

/// E104: zero-arity joins/forks, and early-evaluation guards that fail
/// validation against their join's arity. `add_early_join` validates at
/// construction, but the raw `add()` escape hatch does not — this pass
/// closes that hole.
fn check_arity(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    for c in net.components() {
        let comp = net.component(c);
        match &comp.kind {
            ComponentKind::Join { inputs, ee } => {
                if *inputs == 0 {
                    diags.push(
                        Diagnostic::error("E104", comp.name.clone(), "join declares zero inputs")
                            .with_suggestion("a join needs at least one input channel"),
                    );
                }
                if let Some(ee) = ee {
                    if let Err(e) = ee.validate(*inputs) {
                        diags.push(Diagnostic::error(
                            "E104",
                            comp.name.clone(),
                            format!(
                                "early-evaluation function is invalid for a {inputs}-input \
                                 join: {e}"
                            ),
                        ));
                    }
                }
            }
            ComponentKind::Fork { outputs } if *outputs == 0 => {
                diags.push(
                    Diagnostic::error("E104", comp.name.clone(), "fork declares zero outputs")
                        .with_suggestion("a fork needs at least one output channel"),
                );
            }
            _ => {}
        }
    }
}

/// E102: a cycle passing only through components that do not register all
/// rails (joins, forks, variable-latency units) compiles to a
/// combinational loop.
fn check_bufferless_cycles(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    if let Some(cycle) = find_uncut_cycle(net, ComponentKind::cuts_forward_path) {
        diags.push(
            Diagnostic::error(
                "E102",
                cycle_site(net, &cycle),
                "cycle contains no elastic buffer; the compiled control rails form a \
                 combinational loop",
            )
            .with_suggestion("insert an elastic buffer (add_eb/add_buffer) on the cycle"),
        );
    }
}

/// E101: a cycle avoiding every token-holding buffer carries no initial
/// token, so its joins wait on each other forever (paper Sect. 2's
/// liveness obligation).
fn check_token_liveness(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    let cuts = |k: &ComponentKind| {
        matches!(
            k,
            ComponentKind::Source
                | ComponentKind::Sink
                | ComponentKind::Eb {
                    init_token: true,
                    ..
                }
        )
    };
    if let Some(cycle) = find_uncut_cycle(net, cuts) {
        diags.push(
            Diagnostic::error(
                "E101",
                cycle_site(net, &cycle),
                "cycle carries no initial token and will deadlock at power-up",
            )
            .with_suggestion("set init_token on one of the cycle's elastic buffers"),
        );
    }
}

/// E105: an early-evaluation join emits anti-tokens on the inputs it fires
/// without. Each such input needs somewhere for the anti-token to
/// annihilate: walking the channel backward must reach a source, a
/// token-holding buffer, or a passive boundary that absorbs it. An input
/// whose backward cone has none of these accumulates anti-tokens forever.
fn check_counterflow_paths(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    for c in net.components() {
        let comp = net.component(c);
        let ComponentKind::Join {
            inputs,
            ee: Some(ee),
        } = &comp.kind
        else {
            continue;
        };
        // An input receives anti-tokens only if some term can fire without
        // it. The guard is implicitly required by every term.
        for port in 0..*inputs {
            if port == ee.guard_input {
                continue;
            }
            let always_required = ee.terms.iter().all(|t| t.required.contains(&port));
            if always_required {
                continue;
            }
            let Some(chan) = net.input_channel(c, port) else {
                continue; // E103 reports the missing wire.
            };
            if net.channel(chan).passive {
                // Passive interface: the anti-token is stopped at this
                // boundary and annihilates against the next arriving token.
                continue;
            }
            if !counterflow_reaches_token_source(net, net.channel(chan).from.0) {
                diags.push(
                    Diagnostic::error(
                        "E105",
                        format!("{} input {port} ({})", comp.name, net.channel(chan).name),
                        "anti-tokens emitted on this input have no backward path to a \
                         token source or passive boundary",
                    )
                    .with_suggestion(
                        "mark the channel passive (set_passive) or route the input from a \
                         token-producing region",
                    ),
                );
            }
        }
    }
}

/// Backward closure over active channels from `start`: true when the cone
/// contains a source, a token-holding buffer, or crosses a passive
/// boundary (all of which consume anti-tokens).
fn counterflow_reaches_token_source(net: &ElasticNetwork, start: CompId) -> bool {
    let absorbs = |k: &ComponentKind| {
        matches!(
            k,
            ComponentKind::Source
                | ComponentKind::Eb {
                    init_token: true,
                    ..
                }
        )
    };
    if absorbs(&net.component(start).kind) {
        return true;
    }
    let mut visited = vec![false; net.num_components()];
    visited[start.index()] = true;
    let mut queue = vec![start];
    while let Some(v) = queue.pop() {
        for port in 0..net.component(v).kind.num_inputs() {
            let Some(chan) = net.input_channel(v, port) else {
                continue;
            };
            if net.channel(chan).passive {
                return true;
            }
            let w = net.channel(chan).from.0;
            if absorbs(&net.component(w).kind) {
                return true;
            }
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push(w);
            }
        }
    }
    false
}

/// E106: every controller should be forward-reachable from a token origin
/// (a source or a token-holding buffer); anything else can never see a
/// token and is dead logic.
fn check_reachability(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    let n = net.num_components();
    let mut reached = vec![false; n];
    let mut queue: Vec<CompId> = net
        .components()
        .filter(|&c| {
            matches!(
                net.component(c).kind,
                ComponentKind::Source
                    | ComponentKind::Eb {
                        init_token: true,
                        ..
                    }
            )
        })
        .collect();
    for &c in &queue {
        reached[c.index()] = true;
    }
    while let Some(v) = queue.pop() {
        for port in 0..net.component(v).kind.num_outputs() {
            let Some(chan) = net.output_channel(v, port) else {
                continue;
            };
            let w = net.channel(chan).to.0;
            if !reached[w.index()] {
                reached[w.index()] = true;
                queue.push(w);
            }
        }
    }
    for c in net.components() {
        if !reached[c.index()] {
            diags.push(
                Diagnostic::error(
                    "E106",
                    net.component(c).name.clone(),
                    "not reachable from any source or token-holding buffer; no token can \
                     ever arrive here",
                )
                .with_suggestion("wire the component into the token flow or remove it"),
            );
        }
    }
}

/// W201: a passive anti-token interface only earns its keep when
/// anti-tokens can actually arrive — from a downstream early-evaluation
/// join (or a killing sink, which is an environment property the lint
/// cannot see).
fn check_passive_utility(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    for chan_id in net.channels() {
        let chan = net.channel(chan_id);
        if !chan.passive {
            continue;
        }
        // Forward closure from the consumer.
        let mut visited = vec![false; net.num_components()];
        let mut queue = vec![chan.to.0];
        visited[chan.to.0.index()] = true;
        let mut found_ee = false;
        'walk: while let Some(v) = queue.pop() {
            if matches!(
                net.component(v).kind,
                ComponentKind::Join { ee: Some(_), .. }
            ) {
                found_ee = true;
                break 'walk;
            }
            for port in 0..net.component(v).kind.num_outputs() {
                let Some(c2) = net.output_channel(v, port) else {
                    continue;
                };
                let w = net.channel(c2).to.0;
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push(w);
                }
            }
        }
        if !found_ee {
            diags.push(Diagnostic::warning(
                "W201",
                chan.name.clone(),
                "passive anti-token interface with no early-evaluation join downstream; \
                 only sink kills could ever use it",
            ));
        }
    }
}

/// W202: a cycle passing only through buffers and variable-latency units
/// is a *closed* token ring — no join merges outside tokens in, no fork
/// offers a redundant path, so its token population is invariant under
/// the protocol. When such a ring circulates exactly one token, every
/// channel on it is a single point of failure: a `lose_token` fault there
/// removes the ring's only token, and with no source upstream and no
/// second token-holding buffer on the cycle the loss is provably
/// non-recoverable — the ring idles forever (the fault-injection
/// campaigns observe exactly this as a permanent zero-throughput,
/// never-recovering outcome). A ring with two or more tokens degrades but
/// stays live; a ring with none is already dead at power-up (E101).
fn check_single_point_of_failure(net: &ElasticNetwork, diags: &mut Vec<Diagnostic>) {
    let cuts =
        |k: &ComponentKind| !matches!(k, ComponentKind::Eb { .. } | ComponentKind::VarLatency);
    let Some(cycle) = find_uncut_cycle(net, cuts) else {
        return;
    };
    let tokens = cycle
        .iter()
        .filter(|&&c| {
            matches!(
                net.component(c).kind,
                ComponentKind::Eb {
                    init_token: true,
                    ..
                }
            )
        })
        .count();
    if tokens != 1 {
        return;
    }
    for (i, &v) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        for port in 0..net.component(v).kind.num_outputs() {
            let Some(chan) = net.output_channel(v, port) else {
                continue;
            };
            if net.channel(chan).to.0 == next {
                diags.push(
                    Diagnostic::warning(
                        "W202",
                        net.channel(chan).name.clone(),
                        format!(
                            "single point of failure: losing a token here kills the only \
                             token of the closed buffer ring {} — no redundant path or \
                             spare token can ever recover it",
                            cycle_site(net, &cycle)
                        ),
                    )
                    .with_suggestion(
                        "hold a spare token in a second buffer on the ring, or break the \
                         ring with a join fed from a token-producing region",
                    ),
                );
            }
        }
    }
}

/// W301: the min-cycle-ratio bound of the marked-graph abstraction, under
/// the environment's mean latencies. A bound below 1 means some
/// buffer/latency cycle structurally caps throughput — often a missing
/// pipeline buffer. Analysis failures (open networks, sick structure) are
/// skipped: the structural passes already cover those.
fn check_throughput_bound(net: &ElasticNetwork, env: &EnvConfig, diags: &mut Vec<Diagnostic>) {
    let Ok(bound) = elastic_core::dmg_bridge::lazy_throughput_bound(net, env) else {
        return;
    };
    if bound.bound < 1.0 - 1e-9 {
        diags.push(
            Diagnostic::warning(
                "W301",
                bound.critical.join(" -> "),
                format!(
                    "buffer capacity and latency cap the lazy throughput bound at {:.3} \
                     tokens/cycle on this cycle",
                    bound.bound
                ),
            )
            .with_suggestion(
                "add buffer stages (capacity) on the critical cycle, or accept the cap",
            ),
        );
    }
}

/// Finds one directed cycle avoiding every component for which `cuts`
/// holds, using only public accessors (mirrors the core crate's private
/// walk, but tolerates unwired ports). Returns the component ids on the
/// cycle.
fn find_uncut_cycle(
    net: &ElasticNetwork,
    cuts: impl Fn(&ComponentKind) -> bool,
) -> Option<Vec<CompId>> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = net.num_components();
    let ids: Vec<CompId> = net.components().collect();
    let mut colour = vec![WHITE; n];
    for &start in &ids {
        if colour[start.index()] != WHITE || cuts(&net.component(start).kind) {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        colour[start.index()] = GREY;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor < net.component(v).kind.num_outputs() {
                let port = *cursor;
                *cursor += 1;
                let Some(chan) = net.output_channel(v, port) else {
                    continue;
                };
                let w = net.channel(chan).to.0;
                if cuts(&net.component(w).kind) {
                    continue;
                }
                match colour[w.index()] {
                    WHITE => {
                        colour[w.index()] = GREY;
                        stack.push((w, 0));
                        path.push(w);
                    }
                    GREY => {
                        let pos = path.iter().position(|&p| p == w).expect("on path");
                        return Some(path[pos..].to_vec());
                    }
                    _ => {}
                }
            } else {
                colour[v.index()] = BLACK;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Renders a cycle as a site string: `a -> b -> c`.
fn cycle_site(net: &ElasticNetwork, cycle: &[CompId]) -> String {
    cycle
        .iter()
        .map(|&c| net.component(c).name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::ee::{EarlyEval, EeTerm};

    /// A source->join->fork->sink diamond with a buffered feedback ring.
    fn ring(init_token: bool) -> ElasticNetwork {
        let mut net = ElasticNetwork::new("ring");
        let j = net.add_join("j", 2).unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let b = net.add_eb("b", init_token).unwrap();
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, j, 0, "in").unwrap();
        net.connect(j, 0, f, 0, "jf").unwrap();
        net.connect(f, 0, b, 0, "fb").unwrap();
        net.connect(b, 0, j, 1, "bj").unwrap();
        net.connect(f, 1, snk, 0, "out").unwrap();
        net
    }

    #[test]
    fn live_ring_is_clean() {
        let report = lint_network(&ring(true));
        assert!(report.is_clean(), "{}", report.render_human());
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn starved_ring_trips_e101() {
        let report = lint_network(&ring(false));
        assert!(report.has_code("E101"), "{}", report.render_human());
        assert!(!report.is_clean());
        let d = report.errors().find(|d| d.code == "E101").unwrap();
        assert!(d.site.contains('b'), "{}", d.site);
    }

    #[test]
    fn bufferless_ring_trips_e102() {
        let mut net = ElasticNetwork::new("comb");
        let j = net.add_join("j", 2).unwrap();
        let f = net.add_fork("f", 2).unwrap();
        let src = net.add_source("src").unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, j, 0, "in").unwrap();
        net.connect(j, 0, f, 0, "jf").unwrap();
        net.connect(f, 0, j, 1, "fb").unwrap();
        net.connect(f, 1, snk, 0, "out").unwrap();
        let report = lint_network(&net);
        assert!(report.has_code("E102"), "{}", report.render_human());
        // The same cycle is also token-starved.
        assert!(report.has_code("E101"), "{}", report.render_human());
    }

    #[test]
    fn unwired_port_trips_e103() {
        let mut net = ElasticNetwork::new("partial");
        let _src = net.add_source("src").unwrap();
        let report = lint_network(&net);
        assert!(report.has_code("E103"), "{}", report.render_human());
    }

    #[test]
    fn invalid_ee_guard_trips_e104() {
        use elastic_core::network::ComponentKind;

        // Raw add() bypasses add_early_join's validation: a guard term
        // requiring an out-of-range input.
        let mut net = ElasticNetwork::new("badee");
        let ee = EarlyEval::new(
            0,
            vec![EeTerm {
                guard_mask: 0,
                guard_value: 0,
                required: vec![7],
                select: 7,
            }],
        );
        let j = net.add(
            "j",
            ComponentKind::Join {
                inputs: 2,
                ee: Some(ee),
            },
        );
        let _ = j.unwrap();
        let report = lint_network(&net);
        assert!(report.has_code("E104"), "{}", report.render_human());
    }

    #[test]
    fn zero_arity_trips_e104() {
        use elastic_core::network::ComponentKind;
        let mut net = ElasticNetwork::new("degenerate");
        net.add(
            "j0",
            ComponentKind::Join {
                inputs: 0,
                ee: None,
            },
        )
        .unwrap();
        net.add("f0", ComponentKind::Fork { outputs: 0 }).unwrap();
        let report = lint_network(&net);
        let e104 = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "E104")
            .count();
        assert_eq!(e104, 2, "{}", report.render_human());
    }

    #[test]
    fn ee_input_without_counterflow_path_trips_e105() {
        // Early join whose non-guard input is fed from an empty buffer
        // whose own input is unwired: anti-tokens pile up with nothing to
        // annihilate against.
        let mut net = ElasticNetwork::new("orphan");
        let ee = EarlyEval::new(
            0,
            vec![EeTerm {
                guard_mask: 0,
                guard_value: 0,
                required: vec![],
                select: 0,
            }],
        );
        let j = net.add_early_join("w", 2, ee).unwrap();
        let src = net.add_source("src").unwrap();
        let b = net.add_eb("b", false).unwrap(); // no token, input left unwired
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, j, 0, "guard").unwrap();
        net.connect(b, 0, j, 1, "operand").unwrap();
        net.connect(j, 0, snk, 0, "out").unwrap();
        let report = lint_network(&net);
        assert!(report.has_code("E105"), "{}", report.render_human());
        // Marking the operand channel passive legalizes the absorption.
        let chan = net.channel_by_name("operand").unwrap();
        net.set_passive(chan).unwrap();
        let report = lint_network(&net);
        assert!(!report.has_code("E105"), "{}", report.render_human());
    }

    #[test]
    fn unreachable_controller_trips_e106() {
        let mut net = ring(true);
        // A buffer wired into its own island: two empty buffers in a loop
        // would be E101 too, so use a token-free pair hanging off nothing.
        let x = net.add_eb("island_a", false).unwrap();
        let y = net.add_eb("island_b", false).unwrap();
        net.connect(x, 0, y, 0, "xy").unwrap();
        let report = lint_network(&net);
        let sites: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "E106")
            .map(|d| d.site.as_str())
            .collect();
        assert!(sites.contains(&"island_a"), "{}", report.render_human());
        assert!(sites.contains(&"island_b"), "{}", report.render_human());
    }

    #[test]
    fn pointless_passive_channel_warns_w201() {
        let mut net = ElasticNetwork::new("p");
        let src = net.add_source("src").unwrap();
        let b = net.add_eb("b", false).unwrap();
        let snk = net.add_sink("snk").unwrap();
        net.connect(src, 0, b, 0, "in").unwrap();
        let c = net.connect(b, 0, snk, 0, "out").unwrap();
        net.set_passive(c).unwrap();
        let report = lint_network(&net);
        assert!(report.has_code("W201"), "{}", report.render_human());
        assert!(
            report.is_clean(),
            "warnings only: {}",
            report.render_human()
        );
    }

    /// A closed two-buffer token ring (no source, join or fork on the
    /// cycle) holding `tokens` initial tokens.
    fn closed_ring(tokens: usize) -> ElasticNetwork {
        let mut net = ElasticNetwork::new("closed");
        let a = net.add_eb("a", tokens >= 1).unwrap();
        let b = net.add_eb("b", tokens >= 2).unwrap();
        net.connect(a, 0, b, 0, "ab").unwrap();
        net.connect(b, 0, a, 0, "ba").unwrap();
        net
    }

    #[test]
    fn one_token_closed_ring_warns_w202_on_every_channel() {
        let report = lint_network(&closed_ring(1));
        let sites: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "W202")
            .map(|d| d.site.as_str())
            .collect();
        assert_eq!(sites, ["ab", "ba"], "{}", report.render_human());
        assert!(
            report.is_clean(),
            "warnings only: {}",
            report.render_human()
        );
    }

    #[test]
    fn redundant_token_or_join_suppresses_w202() {
        // A second circulating token is a spare: one loss degrades but
        // does not kill the ring.
        let report = lint_network(&closed_ring(2));
        assert!(!report.has_code("W202"), "{}", report.render_human());
        // A ring through a join/fork (the diamond fixture) merges outside
        // token flow — not a closed ring, whatever its token count.
        let report = lint_network(&ring(true));
        assert!(!report.has_code("W202"), "{}", report.render_human());
    }

    /// Cross-check against the fault campaigns' non-recovery outcomes: a
    /// `lose_token` strike on a W202-flagged channel is *permanently*
    /// non-recoverable — the ring's throughput drops to zero and stays
    /// there, exactly the never-recovering tail the injection campaigns
    /// record for these sites.
    #[test]
    fn w202_channel_lose_token_never_recovers() {
        use elastic_core::compile::FaultInjection;
        use elastic_core::sim::{BehavSim, EnvConfig, RandomEnv};

        let net = closed_ring(1);
        let report = lint_network(&net);
        let flagged: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "W202")
            .map(|d| d.site.clone())
            .collect();
        assert!(!flagged.is_empty());

        let mut env = RandomEnv::new(7, EnvConfig::default());
        // Fault-free reference: the token circulates forever.
        let mut sim = BehavSim::new(&net).unwrap();
        sim.run(&mut env, 64).unwrap();
        let free = sim.report();
        let chan = net.channel_by_name(&flagged[0]).unwrap();
        assert!(free.channels[chan.index()].positive > 16);

        // Strike the flagged channel with lose-token over a whole token
        // period, then keep simulating four times longer than the strike.
        let mut sim = BehavSim::new(&net).unwrap();
        sim.inject_fault(
            FaultInjection::LoseToken {
                channel: flagged[0].clone(),
            },
            8,
            4,
        )
        .unwrap();
        sim.set_check_protocol(false);
        let mut env = RandomEnv::new(7, EnvConfig::default());
        sim.run(&mut env, 64).unwrap();
        let struck = sim.report();
        let after_strike: u64 = struck.channels[chan.index()].positive;
        // Activity stops at the strike and never comes back: everything
        // the channel transferred happened in the pre-strike prefix.
        assert!(
            after_strike <= 8,
            "ring recovered after losing its only token: {after_strike} transfers"
        );
        assert!(free.channels[chan.index()].positive > 4 * after_strike);
    }

    #[test]
    fn paper_systems_lint_clean() {
        use elastic_core::systems::{paper_example, Config};
        for config in Config::all() {
            let sys = paper_example(config).unwrap();
            let report = lint_network_with_env(&sys.network, &sys.env_config);
            assert!(
                report.is_clean(),
                "{}: {}",
                config.label(),
                report.render_human()
            );
        }
    }
}
