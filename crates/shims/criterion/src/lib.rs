//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal wall-clock benchmark harness with the same surface syntax as
//! criterion for the features `benches/throughput.rs` uses: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up once, then run for
//! `sample_size` samples (default 20); each sample times a batch of
//! iterations sized so a sample takes roughly 10ms. The median
//! per-iteration time is reported to stdout. Timing only happens under
//! `cargo bench`, which passes `--bench` to harness-off targets; any other
//! invocation (`cargo test --benches`, a bare run) executes every benchmark
//! body exactly once untimed, which keeps test runs fast.

use std::time::{Duration, Instant};

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    /// `None` in test mode: run the payload once, skip timing.
    timing: Option<BenchTiming>,
}

pub struct BenchTiming {
    samples: usize,
    /// Median per-iteration time, filled in by `iter`.
    result: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let Some(t) = self.timing.as_mut() else {
            std::hint::black_box(f());
            return;
        };
        // Calibrate batch size to ~10ms per sample.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut times: Vec<Duration> = Vec::with_capacity(t.samples);
        for _ in 0..t.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            times.push(start.elapsed() / batch as u32);
        }
        times.sort();
        t.result = times[times.len() / 2];
        t.iterations = batch * t.samples as u64;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Only `cargo bench` passes `--bench` to harness-off targets
        // (`cargo test --benches` passes no mode flag at all), so timing is
        // opt-in via that flag and everything else runs once untimed.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            test_mode: !bench_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, samples: usize, mut f: F) {
        let mut b = Bencher {
            timing: (!self.test_mode).then_some(BenchTiming {
                samples,
                result: Duration::ZERO,
                iterations: 0,
            }),
        };
        f(&mut b);
        match b.timing {
            Some(t) if t.iterations > 0 => {
                println!(
                    "bench {id:50} {:>12.1?}/iter ({} iters)",
                    t.result, t.iterations
                )
            }
            Some(_) => println!("bench {id:50} (no iter call)"),
            None => println!("bench {id:50} ok (test mode)"),
        }
    }
}

/// Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c.run_one(&full, samples, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_payloads() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 3,
        };
        let mut hits = 0usize;
        c.bench_function("f", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 1);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| assert_eq!(x, 7))
        });
        g.finish();
    }

    #[test]
    fn timing_mode_reports_iterations() {
        let mut c = Criterion {
            test_mode: false,
            default_sample_size: 2,
        };
        let mut hits = 0u64;
        c.bench_function("t", |b| b.iter(|| hits += 1));
        assert!(hits > 2);
    }
}
