//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free implementation of exactly the API surface the
//! other crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`] and [`Rng::gen_range`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, statistically solid for simulation workloads, and NOT
//! cryptographically secure (neither is the real `StdRng` contract across
//! versions; all in-repo uses are seeded simulations and tests).

use std::ops::Range;

/// Trait mirroring `rand::SeedableRng`, restricted to `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range<T>`.
///
/// Mirrors the subset of `rand::distributions::uniform::SampleUniform`
/// the workspace needs.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Object-safe raw generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Trait mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Map a u64 to [0, 1) using the top 53 bits (standard double-precision trick).
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                // Lemire-style rejection sampling over the span, computed in
                // u128 so the widest integer types cannot overflow.
                let span = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                debug_assert!(span > 0);
                // Rejection zone keeps the draw exactly uniform.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if raw <= zone {
                        return ((range.start as i128) + (raw % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let v = range.start + unit_f64(rng.next_u64()) * (range.end - range.start);
        // start + unit*(end-start) can round up to exactly `end`; keep the
        // range half-open by clamping to the largest value below it.
        if v < range.end {
            v
        } else {
            range.end.next_down().max(range.start)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let v = range.start + unit_f64(rng.next_u64()) as f32 * (range.end - range.start);
        if v < range.end {
            v
        } else {
            range.end.next_down().max(range.start)
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation, so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_range_never_returns_upper_bound() {
        // A raw draw with maximal top-53 bits makes start + unit*(end-start)
        // round up to exactly `end` without the clamp.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v = <f64 as crate::SampleUniform>::sample_range(&mut MaxRng, 0.25..0.75);
        assert!(v < 0.75, "half-open bound violated: {v}");
        let w = <f32 as crate::SampleUniform>::sample_range(&mut MaxRng, 0.25f32..0.75);
        assert!(w < 0.75, "half-open bound violated: {w}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }
}
