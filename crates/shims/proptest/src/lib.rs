//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing harness with the same surface syntax as real
//! proptest for the features the test suite uses:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(arg in strategy, ...)`,
//! * half-open ranges as strategies (`0u64..500`, `0.1f64..1.0`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * a bounded, deterministic case count (`PROPTEST_CASES`, default 64),
//! * a checked-in regression corpus under `proptest-regressions/` whose
//!   seeds are replayed before the random phase (format: `cc <u64>` lines).
//!
//! Each case derives its RNG seed from the test name and case index, so runs
//! are fully deterministic with no state carried between cases. On failure
//! the harness panics with the failing seed and the sampled argument values,
//! and prints a line suitable for appending to the regression corpus.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Outcome of one property-test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed: this is a real bug (or shrunk counterexample).
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

/// A source of random values of type `Value` (mirrors `proptest::Strategy`).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Drives the cases of one `proptest!` test function.
pub struct TestRunner {
    name: &'static str,
    cases: u32,
}

/// Number of random cases per property (`PROPTEST_CASES`, default 64).
///
/// The default is deliberately small so `cargo test -q` stays fast; CI pins
/// it explicitly. Invalid values fall back to the default.
pub fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

impl TestRunner {
    pub fn new(name: &'static str) -> Self {
        TestRunner {
            name,
            cases: configured_cases(),
        }
    }

    /// The corpus file stem: test names are `file_stem::test_fn` (see the
    /// `proptest!` macro).
    fn stem(&self) -> &str {
        self.name
            .split_once("::")
            .map_or(self.name, |(stem, _)| stem)
    }

    /// Seeds replayed before the random phase: the checked-in regression
    /// corpus at `proptest-regressions/<file_stem>.txt`, lines `cc <u64>`.
    fn regression_seeds(&self) -> Vec<u64> {
        corpus_seeds(self.stem())
    }

    /// Run `case` for every corpus seed plus `cases` derived seeds, stopping
    /// at the first counterexample (no shrinking). The closure receives the
    /// seed (not an rng) so the failure path can deterministically re-sample
    /// the inputs for the report.
    pub fn run(&self, case: impl Fn(u64) -> Result<(), TestCaseError>) {
        let corpus = self.regression_seeds();
        let derived = (0..self.cases as u64).map(|i| derive_seed(self.name, i));
        let mut rejects = 0u32;
        for (origin, seed) in corpus
            .iter()
            .map(|&s| ("corpus", s))
            .chain(derived.map(|s| ("derived", s)))
        {
            match case(seed) {
                Ok(()) => {}
                Err(TestCaseError::Reject) => rejects += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest failure\n[{}] seed {seed} ({origin}): {msg}\n  to pin: \
                     echo 'cc {seed}' >> proptest-regressions/{}.txt",
                    self.name,
                    self.stem()
                ),
            }
        }
        // Guard against vacuous properties where prop_assume! rejects
        // nearly everything.
        let total = corpus.len() as u32 + self.cases;
        assert!(
            rejects < total,
            "[{}] all {total} cases rejected by prop_assume!",
            self.name
        );
    }
}

/// Renders a caught panic payload for the failure report.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Creates the RNG for one test case. Used by the `proptest!` macro, both
/// for the run itself and to re-sample inputs when reporting a failure.
pub fn new_case_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Loads the regression corpus for one test-file stem: the nearest
/// `proptest-regressions/<stem>.txt` walking up from this crate, lines of
/// the form `cc <u64>` (everything else is a comment). Public so test
/// suites can assert their corpus is actually being replayed.
pub fn corpus_seeds(stem: &str) -> Vec<u64> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .map(|a| a.join("proptest-regressions").join(format!("{stem}.txt")))
        .find(|p| p.is_file());
    let Some(path) = path else { return Vec::new() };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("cc "))
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// Stable 64-bit seed from test name + case index (FNV-1a over both).
fn derive_seed(name: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes().chain(index.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "prop_assert_eq: left = {:?}, right = {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "prop_assert_eq: left = {:?}, right = {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "prop_assert_ne: both = {:?}", l);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            // `module_path!` ends with the integration-test file stem (the
            // crate name of the test binary), which is what the regression
            // corpus files are keyed on.
            let full = concat!(module_path!(), "::", stringify!($name));
            let runner = $crate::TestRunner::new(full);
            runner.run(|seed| {
                let mut rng = $crate::new_case_rng(seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Catch panics (unwraps, asserts) inside the body so real
                // regressions still get the seed + pin line instead of a
                // bare panic that bypasses the runner's reporting.
                let res: Result<(), $crate::TestCaseError> = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })
                )
                .unwrap_or_else(|payload| {
                    Err($crate::TestCaseError::Fail(format!(
                        "panicked: {}",
                        $crate::panic_message(payload)
                    )))
                });
                match res {
                    Err($crate::TestCaseError::Fail(msg)) => {
                        // Cold path: re-sample the inputs (deterministic from
                        // the seed; the body may have consumed the originals)
                        // to report the concrete values.
                        let mut rng = $crate::new_case_rng(seed);
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                        let vals = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        Err($crate::TestCaseError::Fail(format!("{msg}\n  inputs: {vals}")))
                    }
                    other => other,
                }
            });
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u64..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        /// A body that panics (rather than prop_assert-failing) must still
        /// produce the seed + corpus pin line.
        #[test]
        #[should_panic(expected = "to pin")]
        fn panicking_body_reports_seed(x in 0u64..10) {
            assert!(x > 100, "deliberate panic for the harness test");
        }
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failing_property_panics_with_seed() {
        let runner = TestRunner::new("shim::always_fails");
        runner.run(|_seed| Err(TestCaseError::Fail("nope".into())));
    }

    #[test]
    fn derived_seeds_differ_between_tests() {
        assert_ne!(
            super::derive_seed("a::t1", 0),
            super::derive_seed("a::t2", 0)
        );
        assert_ne!(
            super::derive_seed("a::t1", 0),
            super::derive_seed("a::t1", 1)
        );
    }
}
