//! VCD (Value Change Dump) waveform capture for simulations.
//!
//! The paper's flow relies on inspecting Verilog simulations; this module
//! is the matching debug aid for our simulator: record named nets each
//! cycle and render an IEEE-1364 VCD file loadable by GTKWave & co.
//!
//! # Example
//!
//! ```
//! use elastic_netlist::{Netlist, sim::Simulator, vcd::VcdRecorder};
//!
//! # fn main() -> Result<(), elastic_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle");
//! let q = n.dff(false);
//! let d = n.not(q);
//! n.bind_dff(q, d)?;
//! n.set_name(q, "q")?;
//!
//! let mut sim = Simulator::new(&n)?;
//! let mut vcd = VcdRecorder::new(&n);
//! for _ in 0..4 {
//!     sim.cycle(&[])?;
//!     vcd.sample(&sim);
//! }
//! let text = vcd.render();
//! assert!(text.contains("$var wire 1"));
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::build::{NetId, Netlist};
use crate::sim::Simulator;

/// Records named-net values cycle by cycle and renders a VCD document.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    module: String,
    nets: Vec<(String, NetId)>,
    /// One sample per cycle: the value of every recorded net.
    samples: Vec<Vec<bool>>,
}

impl VcdRecorder {
    /// Creates a recorder tracking every named net of `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let nets = netlist
            .named_nets()
            .into_iter()
            .map(|(n, id)| (n.to_string(), id))
            .collect();
        VcdRecorder {
            module: netlist.name().to_string(),
            nets,
            samples: Vec::new(),
        }
    }

    /// Creates a recorder tracking only the given named nets.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NetlistError::UnknownName`] for missing names.
    pub fn with_nets(netlist: &Netlist, names: &[&str]) -> Result<Self, crate::NetlistError> {
        let nets = names
            .iter()
            .map(|&n| netlist.find(n).map(|id| (n.to_string(), id)))
            .collect::<Result<_, _>>()?;
        Ok(VcdRecorder {
            module: netlist.name().to_string(),
            nets,
            samples: Vec::new(),
        })
    }

    /// Samples the current simulator values (call once per cycle, after the
    /// cycle settles).
    pub fn sample(&mut self, sim: &Simulator) {
        self.samples
            .push(self.nets.iter().map(|&(_, id)| sim.value(id)).collect());
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders the recording as VCD text (one timestep per cycle; only
    /// changed values are emitted, per the format).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "$date reproduction run $end");
        let _ = writeln!(s, "$version elastic-netlist vcd $end");
        let _ = writeln!(s, "$timescale 1ns $end");
        let _ = writeln!(
            s,
            "$scope module {} $end",
            crate::export::ident(&self.module)
        );
        for (i, (name, _)) in self.nets.iter().enumerate() {
            let _ = writeln!(
                s,
                "$var wire 1 {} {} $end",
                Self::code(i),
                crate::export::ident(name)
            );
        }
        let _ = writeln!(s, "$upscope $end");
        let _ = writeln!(s, "$enddefinitions $end");
        let mut last: Option<&Vec<bool>> = None;
        for (t, row) in self.samples.iter().enumerate() {
            let _ = writeln!(s, "#{t}");
            for (i, &v) in row.iter().enumerate() {
                if last.is_none_or(|prev| prev[i] != v) {
                    let _ = writeln!(s, "{}{}", u8::from(v), Self::code(i));
                }
            }
            last = Some(row);
        }
        s
    }

    /// Renders the recording and writes it to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::Io`] if the write fails.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> Result<(), crate::NetlistError> {
        crate::export::write_text(path, &self.render())
    }

    /// Short identifier codes per VCD convention (printable ASCII 33..127).
    fn code(mut i: usize) -> String {
        let mut out = String::new();
        loop {
            out.push((33 + (i % 94)) as u8 as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggler() -> Netlist {
        let mut n = Netlist::new("t");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        n.set_name(q, "q").unwrap();
        n.set_name(d, "d").unwrap();
        n
    }

    #[test]
    fn records_and_renders() {
        let n = toggler();
        let mut sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdRecorder::new(&n);
        for _ in 0..3 {
            sim.cycle(&[]).unwrap();
            vcd.sample(&sim);
        }
        assert_eq!(vcd.len(), 3);
        let text = vcd.render();
        assert!(text.contains("$scope module t $end"));
        assert!(text.contains("$var wire 1 ! q $end"), "{text}");
        assert!(text.contains("#0\n") && text.contains("#2\n"));
        // q toggles 0,1,0: changes emitted at #1 and #2.
        assert!(
            text.contains("#1\n1!") || text.contains("#1\n0\"\n1!"),
            "{text}"
        );
    }

    #[test]
    fn subset_recording() {
        let n = toggler();
        let mut sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdRecorder::with_nets(&n, &["q"]).unwrap();
        sim.cycle(&[]).unwrap();
        vcd.sample(&sim);
        let text = vcd.render();
        assert!(text.contains(" q $end"));
        assert!(!text.contains(" d $end"));
        assert!(VcdRecorder::with_nets(&n, &["missing"]).is_err());
    }

    #[test]
    fn only_changes_are_emitted() {
        let mut n = Netlist::new("c");
        let k = n.constant(true);
        n.set_name(k, "k").unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdRecorder::new(&n);
        for _ in 0..5 {
            sim.cycle(&[]).unwrap();
            vcd.sample(&sim);
        }
        let text = vcd.render();
        // The constant changes once (initial emission) and never again.
        assert_eq!(text.matches("1!").count(), 1, "{text}");
    }

    #[test]
    fn write_reports_io_failures() {
        let n = toggler();
        let vcd = VcdRecorder::new(&n);
        let err = vcd.write("/nonexistent-dir/wave.vcd").unwrap_err();
        assert!(matches!(err, crate::NetlistError::Io(_)), "{err}");
    }

    #[test]
    fn code_generation_is_unique() {
        use std::collections::HashSet;
        let codes: HashSet<String> = (0..500).map(VcdRecorder::code).collect();
        assert_eq!(codes.len(), 500);
    }
}
