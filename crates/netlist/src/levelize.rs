//! Levelization: lowering a netlist into a flat, topologically sorted
//! instruction tape.
//!
//! [`sim::Simulator`](crate::sim::Simulator) evaluates one gate at a time
//! and iterates the whole netlist to a fixpoint — robust, but slow when the
//! paper's experiments (Figs. 5–9, Table 1) need thousands of random
//! schedules. [`Program::compile`] pays the scheduling cost once instead:
//! it checks the netlist statically (bound state, no combinational cycles),
//! then emits one straight-line instruction sequence per clock phase in
//! dependency order. Executing a tape is a single pass — no fixpoint
//! iteration and no possibility of [`NetlistError::Oscillation`] — and the
//! instruction operands are dense slot indices, so a backend can evaluate
//! many independent trials at once with word-wide operations (see
//! [`wide::WideSimulator`](crate::wide::WideSimulator)).
//!
//! The two-phase clocking discipline of the interpreter is preserved
//! exactly: the high tape evaluates combinational gates and `H`-phase
//! latches, the low tape combinational gates and `L`-phase latches, and
//! flip-flops commit between cycles. Because the structural check rejects
//! loops that close within one phase, a topological pass per phase reaches
//! the same settled valuation as the interpreter's fixpoint.

use crate::build::{Gate, LatchPhase, NetId, Netlist};
use crate::check;
use crate::error::NetlistError;

/// One straight-line instruction of a levelized [`Program`].
///
/// `dst`/operand fields are *slot* indices; slot `i` holds the value of net
/// `NetId(i)`, so probes can keep using [`NetId`]s unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `slots[dst] = if ones { all-ones } else { zero }` — an empty
    /// [`Gate::And`] / [`Gate::Or`] input list.
    Fill {
        /// Destination slot.
        dst: u32,
        /// Fill with ones (true) or zeros (false).
        ones: bool,
    },
    /// `slots[dst] = slots[src]` — buffers, bound wires and transparent
    /// latches without an enable.
    Copy {
        /// Destination slot.
        dst: u32,
        /// Source slot.
        src: u32,
    },
    /// `slots[dst] = !slots[src]`.
    Not {
        /// Destination slot.
        dst: u32,
        /// Source slot.
        src: u32,
    },
    /// `slots[dst] = slots[a] & slots[b]`.
    And2 {
        /// Destination slot.
        dst: u32,
        /// First input slot.
        a: u32,
        /// Second input slot.
        b: u32,
    },
    /// `slots[dst] = slots[a] | slots[b]`.
    Or2 {
        /// Destination slot.
        dst: u32,
        /// First input slot.
        a: u32,
        /// Second input slot.
        b: u32,
    },
    /// `slots[dst] = slots[a] ^ slots[b]`.
    Xor2 {
        /// Destination slot.
        dst: u32,
        /// First input slot.
        a: u32,
        /// Second input slot.
        b: u32,
    },
    /// N-ary AND over `args[start..start + len]` (see [`Program::args`]).
    AndN {
        /// Destination slot.
        dst: u32,
        /// Start offset into the operand pool.
        start: u32,
        /// Number of operands.
        len: u32,
    },
    /// N-ary OR over `args[start..start + len]`.
    OrN {
        /// Destination slot.
        dst: u32,
        /// Start offset into the operand pool.
        start: u32,
        /// Number of operands.
        len: u32,
    },
    /// `slots[dst] = if slots[sel] { slots[a] } else { slots[b] }`.
    Mux {
        /// Destination slot.
        dst: u32,
        /// Select slot.
        sel: u32,
        /// Slot taken when `sel` is true.
        a: u32,
        /// Slot taken when `sel` is false.
        b: u32,
    },
    /// Enable-gated transparent latch in its active phase:
    /// `slots[dst] = if slots[en] { slots[d] } else { slots[dst] }` — the
    /// hold path reads the latch's own previous value.
    LatchEn {
        /// Destination slot (the latch output).
        dst: u32,
        /// Data slot.
        d: u32,
        /// Enable slot.
        en: u32,
    },
}

/// A flip-flop commit record: at every rising edge slot `q` takes the value
/// captured from slot `d` at the end of the previous cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfCommit {
    /// The flip-flop's output slot.
    pub q: u32,
    /// The slot of its data input.
    pub d: u32,
}

/// A levelized netlist: one instruction tape per clock phase, plus the
/// flip-flop commit list and initial slot values.
///
/// Produced by [`Program::compile`]; executed by
/// [`wide::WideSimulator`](crate::wide::WideSimulator). The tape layout is
/// public so alternative backends (e.g. a future SIMD or JIT evaluator) can
/// reuse the levelization pass.
///
/// A compiled program is immutable plain data (`Send + Sync`, asserted in
/// `wide.rs`): compile once, then share it by reference across the worker
/// threads of a sharded Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct Program {
    num_slots: usize,
    init: Vec<bool>,
    high: Vec<Instr>,
    low: Vec<Instr>,
    args: Vec<u32>,
    ffs: Vec<FfCommit>,
    inputs: Vec<NetId>,
    state_nets: Vec<NetId>,
}

impl Program {
    /// Lowers `netlist` into a levelized program.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnboundState`] and
    /// [`NetlistError::CombinationalCycle`] — the same preconditions as
    /// [`sim::Simulator::new`](crate::sim::Simulator::new). A compiled
    /// program can never oscillate, so those are the only failure modes.
    pub fn compile(netlist: &Netlist) -> Result<Program, NetlistError> {
        netlist.check_bound()?;
        check::check_combinational_cycles(netlist)?;
        let n = netlist.len();
        let mut init = vec![false; n];
        let mut ffs = Vec::new();
        for id in netlist.nets() {
            match netlist.gate(id) {
                Gate::Dff { init: v, d } => {
                    init[id.index()] = *v;
                    let d = d.expect("checked by check_bound");
                    ffs.push(FfCommit { q: id.0, d: d.0 });
                }
                Gate::Latch { init: v, .. } => init[id.index()] = *v,
                Gate::Const(v) => init[id.index()] = *v,
                _ => {}
            }
        }
        let mut args = Vec::new();
        let high = emit_phase(netlist, LatchPhase::High, &mut args);
        let low = emit_phase(netlist, LatchPhase::Low, &mut args);
        Ok(Program {
            num_slots: n,
            init,
            high,
            low,
            args,
            ffs,
            inputs: netlist.inputs().to_vec(),
            state_nets: netlist.state_elements(),
        })
    }

    /// Number of value slots (= number of nets in the source netlist).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Power-up value of every slot (flip-flop/latch `init` bits, constant
    /// drivers; everything else false).
    pub fn init(&self) -> &[bool] {
        &self.init
    }

    /// The high-phase instruction tape, in evaluation order.
    pub fn high(&self) -> &[Instr] {
        &self.high
    }

    /// The low-phase instruction tape, in evaluation order.
    pub fn low(&self) -> &[Instr] {
        &self.low
    }

    /// Operand pool for [`Instr::AndN`] / [`Instr::OrN`].
    pub fn args(&self) -> &[u32] {
        &self.args
    }

    /// Flip-flop commit list, in net order.
    pub fn ffs(&self) -> &[FfCommit] {
        &self.ffs
    }

    /// Primary inputs of the source netlist, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// State-element nets in [`Netlist::state_elements`] order — the state
    /// vector layout shared with the scalar simulator.
    pub fn state_nets(&self) -> &[NetId] {
        &self.state_nets
    }
}

/// Whether `net` is (re)computed during `phase`, i.e. gets an instruction.
fn active_in_phase(netlist: &Netlist, net: NetId, phase: LatchPhase) -> bool {
    match netlist.gate(net) {
        Gate::Input | Gate::Const(_) | Gate::Dff { .. } => false,
        Gate::Latch { phase: lp, .. } => *lp == phase,
        _ => true,
    }
}

/// Emits the instruction tape for one phase: lowers the phase-active gates
/// in the dependency order of [`check::topo_order_in_phase`] (acyclic by
/// precondition — the same edge definition the structural check and the
/// scalar simulator use), so every instruction's operands are settled
/// before it executes.
fn emit_phase(netlist: &Netlist, phase: LatchPhase, args: &mut Vec<u32>) -> Vec<Instr> {
    check::topo_order_in_phase(netlist, phase)
        .into_iter()
        .filter(|&v| active_in_phase(netlist, v, phase))
        .filter_map(|v| lower_gate(netlist, v, args))
        .collect()
}

/// Lowers one gate to an instruction (`None` for gates with no evaluation
/// step in any phase — unreachable here, kept total for clarity).
fn lower_gate(netlist: &Netlist, net: NetId, args: &mut Vec<u32>) -> Option<Instr> {
    let dst = net.0;
    Some(match netlist.gate(net) {
        Gate::Input | Gate::Const(_) | Gate::Dff { .. } => return None,
        Gate::Buf(a) => Instr::Copy { dst, src: a.0 },
        Gate::Wire { src } => Instr::Copy {
            dst,
            src: src.expect("checked by check_bound").0,
        },
        Gate::Not(a) => Instr::Not { dst, src: a.0 },
        Gate::And(v) => match v.as_slice() {
            [] => Instr::Fill { dst, ones: true },
            [a] => Instr::Copy { dst, src: a.0 },
            [a, b] => Instr::And2 {
                dst,
                a: a.0,
                b: b.0,
            },
            many => {
                let start = args.len() as u32;
                args.extend(many.iter().map(|a| a.0));
                Instr::AndN {
                    dst,
                    start,
                    len: many.len() as u32,
                }
            }
        },
        Gate::Or(v) => match v.as_slice() {
            [] => Instr::Fill { dst, ones: false },
            [a] => Instr::Copy { dst, src: a.0 },
            [a, b] => Instr::Or2 {
                dst,
                a: a.0,
                b: b.0,
            },
            many => {
                let start = args.len() as u32;
                args.extend(many.iter().map(|a| a.0));
                Instr::OrN {
                    dst,
                    start,
                    len: many.len() as u32,
                }
            }
        },
        Gate::Xor(a, b) => Instr::Xor2 {
            dst,
            a: a.0,
            b: b.0,
        },
        Gate::Mux { sel, a, b } => Instr::Mux {
            dst,
            sel: sel.0,
            a: a.0,
            b: b.0,
        },
        Gate::Latch { d, en, .. } => {
            let d = d.expect("checked by check_bound").0;
            match en {
                Some(en) => Instr::LatchEn { dst, d, en: en.0 },
                None => Instr::Copy { dst, src: d },
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Netlist;

    #[test]
    fn compile_rejects_unbound_and_cyclic() {
        let mut n = Netlist::new("bad");
        let q = n.dff(false);
        assert!(matches!(
            Program::compile(&n).unwrap_err(),
            NetlistError::UnboundState { .. }
        ));
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        Program::compile(&n).unwrap();

        let mut c = Netlist::new("cyc");
        let l = c.latch(LatchPhase::High, false);
        let inv = c.not(l);
        c.bind_latch(l, inv).unwrap();
        assert!(matches!(
            Program::compile(&c).unwrap_err(),
            NetlistError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn operands_precede_uses_in_both_tapes() {
        let mut n = Netlist::new("order");
        let a = n.input("a");
        let b = n.input("b");
        // Deliberately build consumers before producers are referenced in
        // index order via a late-bound wire.
        let w = n.wire();
        let x = n.and2(w, b);
        let y = n.or2(x, a);
        n.bind_wire(w, y).unwrap();
        // y -> x -> w is a combinational cycle; break it with a fresh net.
        let mut n = Netlist::new("order2");
        let a = n.input("a");
        let b = n.input("b");
        let w = n.wire();
        let x = n.and2(w, b);
        let _y = n.or2(x, a);
        let src = n.xor(a, b);
        n.bind_wire(w, src).unwrap();
        let p = Program::compile(&n).unwrap();
        for tape in [p.high(), p.low()] {
            let mut written = vec![false; p.num_slots()];
            for i in tape {
                let (dst, operands): (u32, Vec<u32>) = match *i {
                    Instr::Fill { dst, .. } => (dst, vec![]),
                    Instr::Copy { dst, src } | Instr::Not { dst, src } => (dst, vec![src]),
                    Instr::And2 { dst, a, b }
                    | Instr::Or2 { dst, a, b }
                    | Instr::Xor2 { dst, a, b } => (dst, vec![a, b]),
                    Instr::AndN { dst, start, len } | Instr::OrN { dst, start, len } => (
                        dst,
                        p.args()[start as usize..(start + len) as usize].to_vec(),
                    ),
                    Instr::Mux { dst, sel, a, b } => (dst, vec![sel, a, b]),
                    Instr::LatchEn { dst, d, en } => (dst, vec![d, en]),
                };
                for op in operands {
                    let is_source = matches!(
                        n.gate(NetId(op)),
                        Gate::Input | Gate::Const(_) | Gate::Dff { .. } | Gate::Latch { .. }
                    );
                    assert!(
                        written[op as usize] || is_source,
                        "instruction for slot {dst} reads unsettled slot {op}"
                    );
                }
                written[dst as usize] = true;
            }
        }
    }

    #[test]
    fn nary_gates_use_operand_pool() {
        let mut n = Netlist::new("nary");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.and([a, b, c]);
        let _ = n.or([a, b, c, x]);
        let p = Program::compile(&n).unwrap();
        // Both phase tapes re-evaluate the combinational gates, so the
        // operand pool holds one run per phase: (3 + 4) * 2.
        assert_eq!(p.args().len(), 14);
        assert!(p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::AndN { len: 3, .. })));
        assert!(p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::OrN { len: 4, .. })));
    }

    #[test]
    fn latch_phases_split_across_tapes() {
        let mut n = Netlist::new("ms");
        let a = n.input("a");
        let h = n.latch(LatchPhase::High, false);
        n.bind_latch(h, a).unwrap();
        let l = n.latch(LatchPhase::Low, false);
        n.bind_latch(l, h).unwrap();
        let p = Program::compile(&n).unwrap();
        assert!(p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == h.0)));
        assert!(!p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == l.0)));
        assert!(p
            .low()
            .iter()
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == l.0)));
    }

    #[test]
    fn ff_commits_and_init_recorded() {
        let mut n = Netlist::new("ff");
        let q = n.dff(true);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        let k = n.constant(true);
        let _ = k;
        let p = Program::compile(&n).unwrap();
        assert_eq!(p.ffs(), &[FfCommit { q: q.0, d: d.0 }]);
        assert!(p.init()[q.index()]);
        assert!(p.init()[k.index()]);
        assert_eq!(p.state_nets(), &[q]);
    }
}
