//! Levelization: lowering a netlist into a flat, topologically sorted
//! instruction tape.
//!
//! [`sim::Simulator`](crate::sim::Simulator) evaluates one gate at a time
//! and iterates the whole netlist to a fixpoint — robust, but slow when the
//! paper's experiments (Figs. 5–9, Table 1) need thousands of random
//! schedules. [`Program::compile`] pays the scheduling cost once instead:
//! it checks the netlist statically (bound state, no combinational cycles),
//! then emits one straight-line instruction sequence per clock phase in
//! dependency order. Executing a tape is a single pass — no fixpoint
//! iteration and no possibility of [`NetlistError::Oscillation`] — and the
//! instruction operands are dense slot indices, so a backend can evaluate
//! many independent trials at once with word-wide operations (see
//! [`wide::WideSimulator`](crate::wide::WideSimulator)).
//!
//! The two-phase clocking discipline of the interpreter is preserved
//! exactly: the high tape evaluates combinational gates and `H`-phase
//! latches, the low tape combinational gates and `L`-phase latches, and
//! flip-flops commit between cycles. Because the structural check rejects
//! loops that close within one phase, a topological pass per phase reaches
//! the same settled valuation as the interpreter's fixpoint.

use crate::build::{Gate, LatchPhase, NetId, Netlist};
use crate::check;
use crate::error::NetlistError;

/// One straight-line instruction of a levelized [`Program`].
///
/// `dst`/operand fields are *slot* indices; slot `i` holds the value of net
/// `NetId(i)`, so probes can keep using [`NetId`]s unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `slots[dst] = if ones { all-ones } else { zero }` — an empty
    /// [`Gate::And`] / [`Gate::Or`] input list.
    Fill {
        /// Destination slot.
        dst: u32,
        /// Fill with ones (true) or zeros (false).
        ones: bool,
    },
    /// `slots[dst] = slots[src]` — buffers, bound wires and transparent
    /// latches without an enable.
    Copy {
        /// Destination slot.
        dst: u32,
        /// Source slot.
        src: u32,
    },
    /// `slots[dst] = !slots[src]`.
    Not {
        /// Destination slot.
        dst: u32,
        /// Source slot.
        src: u32,
    },
    /// `slots[dst] = slots[a] & slots[b]`.
    And2 {
        /// Destination slot.
        dst: u32,
        /// First input slot.
        a: u32,
        /// Second input slot.
        b: u32,
    },
    /// `slots[dst] = slots[a] | slots[b]`.
    Or2 {
        /// Destination slot.
        dst: u32,
        /// First input slot.
        a: u32,
        /// Second input slot.
        b: u32,
    },
    /// `slots[dst] = slots[a] ^ slots[b]`.
    Xor2 {
        /// Destination slot.
        dst: u32,
        /// First input slot.
        a: u32,
        /// Second input slot.
        b: u32,
    },
    /// `slots[dst] = slots[a] & !slots[b]` — produced by the
    /// [`Program::peephole`] pass fusing a `Not` into its `And2` consumer
    /// (the `x & !y` kill-gating shape is everywhere in elastic
    /// controllers). Never emitted by the initial lowering.
    AndNot {
        /// Destination slot.
        dst: u32,
        /// Non-inverted input slot.
        a: u32,
        /// Inverted input slot.
        b: u32,
    },
    /// `slots[dst] = slots[a] | !slots[b]` — peephole fusion of a `Not`
    /// into its `Or2` consumer. Never emitted by the initial lowering.
    OrNot {
        /// Destination slot.
        dst: u32,
        /// Non-inverted input slot.
        a: u32,
        /// Inverted input slot.
        b: u32,
    },
    /// N-ary AND over `args[start..start + len]` (see [`Program::args`]).
    AndN {
        /// Destination slot.
        dst: u32,
        /// Start offset into the operand pool.
        start: u32,
        /// Number of operands.
        len: u32,
    },
    /// N-ary OR over `args[start..start + len]`.
    OrN {
        /// Destination slot.
        dst: u32,
        /// Start offset into the operand pool.
        start: u32,
        /// Number of operands.
        len: u32,
    },
    /// `slots[dst] = if slots[sel] { slots[a] } else { slots[b] }`.
    Mux {
        /// Destination slot.
        dst: u32,
        /// Select slot.
        sel: u32,
        /// Slot taken when `sel` is true.
        a: u32,
        /// Slot taken when `sel` is false.
        b: u32,
    },
    /// Enable-gated transparent latch in its active phase:
    /// `slots[dst] = if slots[en] { slots[d] } else { slots[dst] }` — the
    /// hold path reads the latch's own previous value.
    LatchEn {
        /// Destination slot (the latch output).
        dst: u32,
        /// Data slot.
        d: u32,
        /// Enable slot.
        en: u32,
    },
}

impl Instr {
    /// Destination slot of this instruction.
    pub fn dst(self) -> u32 {
        match self {
            Instr::Fill { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Not { dst, .. }
            | Instr::And2 { dst, .. }
            | Instr::Or2 { dst, .. }
            | Instr::Xor2 { dst, .. }
            | Instr::AndNot { dst, .. }
            | Instr::OrNot { dst, .. }
            | Instr::AndN { dst, .. }
            | Instr::OrN { dst, .. }
            | Instr::Mux { dst, .. }
            | Instr::LatchEn { dst, .. } => dst,
        }
    }

    /// The slots this instruction reads, resolving N-ary operand-pool
    /// windows through `args` (see [`Program::args`]). A
    /// [`Instr::LatchEn`] reads its own destination (the hold path), so
    /// its `dst` is among the returned operands. Public so external
    /// analyses (the `elastic_lint` translation-validation passes) share
    /// the executor's exact operand semantics instead of re-deriving them.
    pub fn operands(self, args: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        push_operands(self, args, &mut out);
        out
    }
}

/// Appends the slots `instr` reads to `out`. A [`Instr::LatchEn`] reads its
/// own destination (the hold path), so `dst` is among its operands.
fn push_operands(instr: Instr, args: &[u32], out: &mut Vec<u32>) {
    match instr {
        Instr::Fill { .. } => {}
        Instr::Copy { src, .. } | Instr::Not { src, .. } => out.push(src),
        Instr::And2 { a, b, .. }
        | Instr::Or2 { a, b, .. }
        | Instr::Xor2 { a, b, .. }
        | Instr::AndNot { a, b, .. }
        | Instr::OrNot { a, b, .. } => {
            out.push(a);
            out.push(b);
        }
        Instr::AndN { start, len, .. } | Instr::OrN { start, len, .. } => {
            out.extend(&args[start as usize..(start + len) as usize]);
        }
        Instr::Mux { sel, a, b, .. } => {
            out.push(sel);
            out.push(a);
            out.push(b);
        }
        Instr::LatchEn { dst, d, en } => {
            out.push(d);
            out.push(en);
            out.push(dst);
        }
    }
}

/// A flip-flop commit record: at every rising edge slot `q` takes the value
/// captured from slot `d` at the end of the previous cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfCommit {
    /// The flip-flop's output slot.
    pub q: u32,
    /// The slot of its data input.
    pub d: u32,
}

/// A cache-blocking schedule over a program's two phase tapes: consecutive
/// instruction ranges whose touched value slots fit a byte budget, so each
/// block's working set stays L1/L2-resident while the wide backend sweeps
/// its lane words through it.
///
/// Blocks partition each tape **in order** — executing them back to back
/// performs exactly the instruction sequence of the unblocked tape, so
/// results are bit-identical for every block size (asserted by property
/// tests in `wide.rs` and the experiment-engine proptests).
///
/// Produced by [`Program::block_plan`]; consumed by
/// [`wide::WideSim::cycle_packed_blocked`](crate::wide::WideSim::cycle_packed_blocked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPlan {
    /// `(start, end)` instruction ranges partitioning the high tape.
    high: Vec<(usize, usize)>,
    /// `(start, end)` instruction ranges partitioning the low tape.
    low: Vec<(usize, usize)>,
    /// The byte budget the plan was built for.
    budget_bytes: usize,
}

impl BlockPlan {
    /// Instruction ranges of the high-phase tape, in execution order.
    pub fn high(&self) -> &[(usize, usize)] {
        &self.high
    }

    /// Instruction ranges of the low-phase tape, in execution order.
    pub fn low(&self) -> &[(usize, usize)] {
        &self.low
    }

    /// The working-set byte budget this plan was built for.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Total number of blocks across both tapes.
    pub fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }

    /// Whether the plan holds no blocks (both tapes empty).
    pub fn is_empty(&self) -> bool {
        self.high.is_empty() && self.low.is_empty()
    }
}

/// A levelized netlist: one instruction tape per clock phase, plus the
/// flip-flop commit list and initial slot values.
///
/// Produced by [`Program::compile`]; executed by
/// [`wide::WideSimulator`](crate::wide::WideSimulator). The tape layout is
/// public so alternative backends (e.g. a future SIMD or JIT evaluator) can
/// reuse the levelization pass.
///
/// A compiled program is immutable plain data (`Send + Sync`, asserted in
/// `wide.rs`): compile once, then share it by reference across the worker
/// threads of a sharded Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct Program {
    num_slots: usize,
    init: Vec<bool>,
    high: Vec<Instr>,
    low: Vec<Instr>,
    args: Vec<u32>,
    ffs: Vec<FfCommit>,
    inputs: Vec<NetId>,
    state_nets: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Program {
    /// Lowers `netlist` into a levelized program.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnboundState`] and
    /// [`NetlistError::CombinationalCycle`] — the same preconditions as
    /// [`sim::Simulator::new`](crate::sim::Simulator::new). A compiled
    /// program can never oscillate, so those are the only failure modes.
    pub fn compile(netlist: &Netlist) -> Result<Program, NetlistError> {
        netlist.check_bound()?;
        check::check_combinational_cycles(netlist)?;
        let n = netlist.len();
        let mut init = vec![false; n];
        let mut ffs = Vec::new();
        for id in netlist.nets() {
            match netlist.gate(id) {
                Gate::Dff { init: v, d } => {
                    init[id.index()] = *v;
                    let d = d.expect("checked by check_bound");
                    ffs.push(FfCommit { q: id.0, d: d.0 });
                }
                Gate::Latch { init: v, .. } => init[id.index()] = *v,
                Gate::Const(v) => init[id.index()] = *v,
                _ => {}
            }
        }
        let mut args = Vec::new();
        let high = emit_phase(netlist, LatchPhase::High, &mut args);
        let low = emit_phase(netlist, LatchPhase::Low, &mut args);
        Ok(Program {
            num_slots: n,
            init,
            high,
            low,
            args,
            ffs,
            inputs: netlist.inputs().to_vec(),
            state_nets: netlist.state_elements(),
            outputs: netlist.outputs().to_vec(),
        })
    }

    /// Compiles and immediately runs the [`Program::peephole`] pass.
    ///
    /// The resulting tapes preserve, cycle by cycle, the values of the
    /// netlist's primary outputs, state elements and flip-flop captures —
    /// other nets may go stale (their instructions can be eliminated), so
    /// probe only outputs and state on a peephole-optimized program.
    ///
    /// # Errors
    ///
    /// Same as [`Program::compile`].
    pub fn compile_optimized(netlist: &Netlist) -> Result<(Program, PeepholeStats), NetlistError> {
        let mut p = Program::compile(netlist)?;
        let stats = p.peephole();
        Ok((p, stats))
    }

    /// Number of value slots (= number of nets in the source netlist).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Power-up value of every slot (flip-flop/latch `init` bits, constant
    /// drivers; everything else false).
    pub fn init(&self) -> &[bool] {
        &self.init
    }

    /// The high-phase instruction tape, in evaluation order.
    pub fn high(&self) -> &[Instr] {
        &self.high
    }

    /// The low-phase instruction tape, in evaluation order.
    pub fn low(&self) -> &[Instr] {
        &self.low
    }

    /// Operand pool for [`Instr::AndN`] / [`Instr::OrN`].
    pub fn args(&self) -> &[u32] {
        &self.args
    }

    /// Flip-flop commit list, in net order.
    pub fn ffs(&self) -> &[FfCommit] {
        &self.ffs
    }

    /// Primary inputs of the source netlist, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// State-element nets in [`Netlist::state_elements`] order — the state
    /// vector layout shared with the scalar simulator.
    pub fn state_nets(&self) -> &[NetId] {
        &self.state_nets
    }

    /// Primary outputs of the source netlist — the observation set the
    /// [`Program::peephole`] pass preserves (together with state elements
    /// and flip-flop captures).
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Bytes of simulator value state a `width`-word backend needs for this
    /// program (the `values` arena of a
    /// [`wide::WideSim`](crate::wide::WideSim)): `num_slots × width × 8`.
    /// The runtime word-width dispatch of the Monte-Carlo engine uses this
    /// to keep the arena cache-resident.
    pub fn footprint_bytes(&self, width: usize) -> usize {
        self.num_slots * width * 8
    }

    /// Splits both phase tapes into consecutive instruction blocks whose
    /// touched-slot working set stays within `budget_bytes` for a
    /// `width`-word backend — see [`BlockPlan`]. Each block gets at least
    /// one instruction, so a tiny budget degrades to per-instruction blocks
    /// rather than failing.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn block_plan(&self, width: usize, budget_bytes: usize) -> BlockPlan {
        assert!(width > 0, "block plan needs a word width");
        let bytes_per_slot = width * 8;
        let mut operands = Vec::new();
        let mut split = |tape: &[Instr]| -> Vec<(usize, usize)> {
            let mut blocks = Vec::new();
            let mut start = 0usize;
            // Slot-indexed epoch marks: slot i is in the current block's
            // working set iff touched[i] == epoch. Reset is O(1) per block.
            let mut touched = vec![0u32; self.num_slots];
            let mut epoch = 1u32;
            let mut live = 0usize;
            for (i, &instr) in tape.iter().enumerate() {
                operands.clear();
                operands.push(instr.dst());
                push_operands(instr, &self.args, &mut operands);
                let fresh = operands
                    .iter()
                    .filter(|&&s| touched[s as usize] != epoch)
                    .count();
                if i > start && (live + fresh) * bytes_per_slot > budget_bytes {
                    blocks.push((start, i));
                    start = i;
                    epoch += 1;
                    live = 0;
                }
                for &s in &operands {
                    if touched[s as usize] != epoch {
                        touched[s as usize] = epoch;
                        live += 1;
                    }
                }
            }
            if start < tape.len() {
                blocks.push((start, tape.len()));
            }
            blocks
        };
        BlockPlan {
            high: split(&self.high),
            low: split(&self.low),
            budget_bytes,
        }
    }

    /// Peephole-optimizes the instruction tapes in place:
    ///
    /// 1. **copy-chain collapsing** — readers of a `Copy` destination are
    ///    redirected to its source (sound within a tape: every slot is
    ///    written at most once per tape, in dependency order);
    /// 2. **inverter fusion** — `Not` feeding `And2`/`Or2` becomes a single
    ///    [`Instr::AndNot`]/[`Instr::OrNot`], and inverted mux selects swap
    ///    their arms;
    /// 3. **constant folding** — slots never written by either tape (and
    ///    not inputs or state) are stuck at their power-up value, `Fill`
    ///    destinations are tape-local constants, and both fold through
    ///    every gate kind (including shrinking `AndN`/`OrN` operand runs
    ///    and deleting never-enabled hold latches);
    /// 4. **phase-aware dead-code elimination** — an instruction survives
    ///    only if its destination is read before being overwritten, by a
    ///    live instruction, a flip-flop capture, or an end-of-cycle
    ///    observation of an output/state net. A combinational gate whose
    ///    value is only consumed after the low phase thus executes once per
    ///    cycle instead of twice — for latch-free controllers this removes
    ///    the high tape entirely.
    ///
    /// After the pass, only primary outputs, state elements and flip-flop
    /// captures are guaranteed to hold their exact per-cycle values; other
    /// slots may be stale. Equivalence on the preserved nets is asserted
    /// against the scalar interpreter by property tests over random
    /// netlists.
    pub fn peephole(&mut self) -> PeepholeStats {
        let n = self.num_slots;
        let mut stats = PeepholeStats {
            instrs_before: self.high.len() + self.low.len(),
            ..PeepholeStats::default()
        };
        // Global constants: slots never written by either tape are stuck at
        // their power-up value — unless they are inputs (driven by the
        // testbench) or state elements (flip-flop commits and `load_state`
        // write them outside the tapes).
        let mut konst_base: Vec<Option<bool>> = self.init.iter().map(|&b| Some(b)).collect();
        for i in self.high.iter().chain(self.low.iter()) {
            konst_base[i.dst() as usize] = None;
        }
        for &i in &self.inputs {
            konst_base[i.index()] = None;
        }
        for &s in &self.state_nets {
            konst_base[s.index()] = None;
        }
        // Forward rewrite of both tapes to a joint fixpoint (a fold in one
        // pass can expose a fusion in the next).
        loop {
            let mut changed = false;
            let high = std::mem::take(&mut self.high);
            let (high, ch) = rewrite_tape(&high, &mut self.args, &konst_base, n, &mut stats);
            self.high = high;
            changed |= ch;
            let low = std::mem::take(&mut self.low);
            let (low, cl) = rewrite_tape(&low, &mut self.args, &konst_base, n, &mut stats);
            self.low = low;
            changed |= cl;
            if !changed {
                break;
            }
        }
        self.eliminate_dead();
        stats.instrs_after = self.high.len() + self.low.len();
        stats
    }

    /// Phase-aware dead-code elimination over both tapes (step 4 of
    /// [`Program::peephole`]): backward liveness in execution order (low
    /// tape, then high tape, with needs at the top of the high tape wrapping
    /// to the previous cycle's end), iterated to a fixpoint. Roots are the
    /// end-of-cycle observations: primary outputs, state elements and
    /// flip-flop data captures.
    fn eliminate_dead(&mut self) {
        let n = self.num_slots;
        let mut roots = vec![false; n];
        for &o in &self.outputs {
            roots[o.index()] = true;
        }
        for &s in &self.state_nets {
            roots[s.index()] = true;
        }
        for f in &self.ffs {
            roots[f.d as usize] = true;
        }
        let mut live_high = vec![false; self.high.len()];
        let mut live_low = vec![false; self.low.len()];
        // Slots whose value at the top of the high tape is read before being
        // rewritten — they bind to the previous cycle's end-of-low values.
        // (Flip-flop outputs and inputs are overwritten at the cycle
        // boundary, but they have no tape writers, so carrying their needs
        // across is harmless.)
        let mut boundary = vec![false; n];
        let mut ops: Vec<u32> = Vec::new();
        loop {
            let mut changed = false;
            // `needed[s]`: at the current point of the backward scan, the
            // value of slot `s` is read later in the cycle before any write.
            let mut needed = roots.clone();
            for (s, &b) in boundary.iter().enumerate() {
                needed[s] = needed[s] || b;
            }
            for (tape, live) in [(&self.low, &mut live_low), (&self.high, &mut live_high)] {
                for (pos, &instr) in tape.iter().enumerate().rev() {
                    let dst = instr.dst() as usize;
                    if needed[dst] || live[pos] {
                        if !live[pos] {
                            live[pos] = true;
                            changed = true;
                        }
                        // This write satisfies any later read of `dst`; its
                        // operands become needed in turn. (A `LatchEn` lists
                        // its own destination as an operand, so the hold
                        // path re-arms the need across the boundary.)
                        needed[dst] = false;
                        ops.clear();
                        push_operands(instr, &self.args, &mut ops);
                        for &o in &ops {
                            needed[o as usize] = true;
                        }
                    } else {
                        // Dead write: later reads bind to it, so it blocks
                        // upstream needs — `needed[dst]` is already false.
                    }
                }
            }
            if needed != boundary {
                boundary = needed;
                changed = true;
            }
            if !changed {
                break;
            }
        }
        let mut keep = live_high.iter();
        self.high
            .retain(|_| *keep.next().expect("one flag per instr"));
        let mut keep = live_low.iter();
        self.low
            .retain(|_| *keep.next().expect("one flag per instr"));
    }
}

/// Statistics of one [`Program::peephole`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// Instructions across both tapes before the pass.
    pub instrs_before: usize,
    /// Instructions across both tapes after the pass.
    pub instrs_after: usize,
    /// `Not` + `And2`/`Or2` pairs fused into `AndNot`/`OrNot`.
    pub fused: usize,
    /// Folding steps applied (one instruction may fold several times on its
    /// way to a fixpoint).
    pub folded: usize,
}

/// One forward rewrite pass over a tape: alias-resolves operands through
/// copies, then folds/fuses each instruction to a fixpoint (see
/// [`Program::peephole`] steps 1–3). Returns the rewritten tape and whether
/// anything changed.
fn rewrite_tape(
    tape: &[Instr],
    args: &mut Vec<u32>,
    konst_base: &[Option<bool>],
    num_slots: usize,
    stats: &mut PeepholeStats,
) -> (Vec<Instr>, bool) {
    // Tape-local facts, keyed by slot. All are sound for the remainder of
    // the tape because every slot is written at most once per tape and the
    // tape is in dependency order.
    let mut alias: Vec<u32> = (0..num_slots as u32).collect();
    let mut inv: Vec<Option<u32>> = vec![None; num_slots];
    let mut konst: Vec<Option<bool>> = konst_base.to_vec();
    let mut out: Vec<Instr> = Vec::with_capacity(tape.len());
    let mut changed = false;
    for &orig in tape {
        match simplify(orig, args, &alias, &inv, &konst, stats) {
            None => changed = true, // hold-latch deleted: the slot keeps its value
            Some(instr) => {
                changed |= instr != orig;
                match instr {
                    Instr::Fill { dst, ones } => konst[dst as usize] = Some(ones),
                    Instr::Copy { dst, src } => {
                        alias[dst as usize] = src;
                        konst[dst as usize] = konst[src as usize];
                        inv[dst as usize] = inv[src as usize];
                    }
                    Instr::Not { dst, src } => inv[dst as usize] = Some(src),
                    _ => {}
                }
                out.push(instr);
            }
        }
    }
    (out, changed)
}

/// Folds one instruction to a local fixpoint under the tape-local facts.
/// Returns `None` when the instruction can be deleted outright (a hold
/// latch whose enable is constant-false or whose data is its own output).
#[allow(clippy::too_many_lines)]
fn simplify(
    orig: Instr,
    args: &mut Vec<u32>,
    alias: &[u32],
    inv: &[Option<u32>],
    konst: &[Option<bool>],
    stats: &mut PeepholeStats,
) -> Option<Instr> {
    let r = |mut s: u32| {
        while alias[s as usize] != s {
            s = alias[s as usize];
        }
        s
    };
    let k = |s: u32| konst[s as usize];
    let iv = |s: u32| inv[s as usize];
    let mut cur = match orig {
        Instr::Fill { .. } | Instr::AndN { .. } | Instr::OrN { .. } => orig,
        Instr::Copy { dst, src } => Instr::Copy { dst, src: r(src) },
        Instr::Not { dst, src } => Instr::Not { dst, src: r(src) },
        Instr::And2 { dst, a, b } => Instr::And2 {
            dst,
            a: r(a),
            b: r(b),
        },
        Instr::Or2 { dst, a, b } => Instr::Or2 {
            dst,
            a: r(a),
            b: r(b),
        },
        Instr::Xor2 { dst, a, b } => Instr::Xor2 {
            dst,
            a: r(a),
            b: r(b),
        },
        Instr::AndNot { dst, a, b } => Instr::AndNot {
            dst,
            a: r(a),
            b: r(b),
        },
        Instr::OrNot { dst, a, b } => Instr::OrNot {
            dst,
            a: r(a),
            b: r(b),
        },
        Instr::Mux { dst, sel, a, b } => Instr::Mux {
            dst,
            sel: r(sel),
            a: r(a),
            b: r(b),
        },
        Instr::LatchEn { dst, d, en } => Instr::LatchEn {
            dst,
            d: r(d),
            en: r(en),
        },
    };
    loop {
        let next = match cur {
            Instr::Fill { .. } => break,
            Instr::Copy { dst, src } => match k(src) {
                Some(v) => Instr::Fill { dst, ones: v },
                None => break,
            },
            Instr::Not { dst, src } => match (k(src), iv(src)) {
                (Some(v), _) => Instr::Fill { dst, ones: !v },
                (None, Some(x)) => Instr::Copy { dst, src: x }, // double negation
                (None, None) => break,
            },
            Instr::And2 { dst, a, b } => {
                if k(a) == Some(false)
                    || k(b) == Some(false)
                    || iv(a) == Some(b)
                    || iv(b) == Some(a)
                {
                    Instr::Fill { dst, ones: false }
                } else if k(a) == Some(true) || a == b {
                    Instr::Copy { dst, src: b }
                } else if k(b) == Some(true) {
                    Instr::Copy { dst, src: a }
                } else if let Some(x) = iv(b) {
                    stats.fused += 1;
                    Instr::AndNot { dst, a, b: x }
                } else if let Some(x) = iv(a) {
                    stats.fused += 1;
                    Instr::AndNot { dst, a: b, b: x }
                } else {
                    break;
                }
            }
            Instr::Or2 { dst, a, b } => {
                if k(a) == Some(true) || k(b) == Some(true) || iv(a) == Some(b) || iv(b) == Some(a)
                {
                    Instr::Fill { dst, ones: true }
                } else if k(a) == Some(false) || a == b {
                    Instr::Copy { dst, src: b }
                } else if k(b) == Some(false) {
                    Instr::Copy { dst, src: a }
                } else if let Some(x) = iv(b) {
                    stats.fused += 1;
                    Instr::OrNot { dst, a, b: x }
                } else if let Some(x) = iv(a) {
                    stats.fused += 1;
                    Instr::OrNot { dst, a: b, b: x }
                } else {
                    break;
                }
            }
            Instr::Xor2 { dst, a, b } => match (k(a), k(b)) {
                (Some(x), Some(y)) => Instr::Fill { dst, ones: x ^ y },
                (Some(false), None) => Instr::Copy { dst, src: b },
                (Some(true), None) => Instr::Not { dst, src: b },
                (None, Some(false)) => Instr::Copy { dst, src: a },
                (None, Some(true)) => Instr::Not { dst, src: a },
                (None, None) if a == b => Instr::Fill { dst, ones: false },
                (None, None) if iv(a) == Some(b) || iv(b) == Some(a) => {
                    Instr::Fill { dst, ones: true }
                }
                (None, None) => break,
            },
            // a & !b
            Instr::AndNot { dst, a, b } => {
                if k(a) == Some(false) || k(b) == Some(true) || a == b {
                    Instr::Fill { dst, ones: false }
                } else if k(b) == Some(false) || iv(b) == Some(a) {
                    Instr::Copy { dst, src: a }
                } else if k(a) == Some(true) || iv(a) == Some(b) {
                    Instr::Not { dst, src: b }
                } else if let Some(x) = iv(b) {
                    Instr::And2 { dst, a, b: x } // !b == x
                } else {
                    break;
                }
            }
            // a | !b
            Instr::OrNot { dst, a, b } => {
                if k(a) == Some(true) || k(b) == Some(false) || a == b {
                    Instr::Fill { dst, ones: true }
                } else if k(b) == Some(true) || iv(b) == Some(a) {
                    Instr::Copy { dst, src: a }
                } else if k(a) == Some(false) || iv(a) == Some(b) {
                    Instr::Not { dst, src: b }
                } else if let Some(x) = iv(b) {
                    Instr::Or2 { dst, a, b: x } // !b == x
                } else {
                    break;
                }
            }
            Instr::AndN { dst, start, len } => {
                let range = start as usize..(start + len) as usize;
                let ops: Vec<u32> = args[range.clone()].iter().map(|&s| r(s)).collect();
                if ops.iter().any(|&s| k(s) == Some(false))
                    || ops.iter().any(|&s| iv(s).is_some_and(|x| ops.contains(&x)))
                {
                    Instr::Fill { dst, ones: false }
                } else {
                    let mut kept: Vec<u32> = Vec::with_capacity(ops.len());
                    for &s in &ops {
                        if k(s) != Some(true) && !kept.contains(&s) {
                            kept.push(s);
                        }
                    }
                    match kept[..] {
                        [] => Instr::Fill { dst, ones: true },
                        [x] => Instr::Copy { dst, src: x },
                        [x, y] => Instr::And2 { dst, a: x, b: y },
                        _ => {
                            if kept[..] == args[range] {
                                break;
                            }
                            let new_start = args.len() as u32;
                            args.extend_from_slice(&kept);
                            Instr::AndN {
                                dst,
                                start: new_start,
                                len: kept.len() as u32,
                            }
                        }
                    }
                }
            }
            Instr::OrN { dst, start, len } => {
                let range = start as usize..(start + len) as usize;
                let ops: Vec<u32> = args[range.clone()].iter().map(|&s| r(s)).collect();
                if ops.iter().any(|&s| k(s) == Some(true))
                    || ops.iter().any(|&s| iv(s).is_some_and(|x| ops.contains(&x)))
                {
                    Instr::Fill { dst, ones: true }
                } else {
                    let mut kept: Vec<u32> = Vec::with_capacity(ops.len());
                    for &s in &ops {
                        if k(s) != Some(false) && !kept.contains(&s) {
                            kept.push(s);
                        }
                    }
                    match kept[..] {
                        [] => Instr::Fill { dst, ones: false },
                        [x] => Instr::Copy { dst, src: x },
                        [x, y] => Instr::Or2 { dst, a: x, b: y },
                        _ => {
                            if kept[..] == args[range] {
                                break;
                            }
                            let new_start = args.len() as u32;
                            args.extend_from_slice(&kept);
                            Instr::OrN {
                                dst,
                                start: new_start,
                                len: kept.len() as u32,
                            }
                        }
                    }
                }
            }
            Instr::Mux { dst, sel, a, b } => match k(sel) {
                Some(true) => Instr::Copy { dst, src: a },
                Some(false) => Instr::Copy { dst, src: b },
                None if a == b => Instr::Copy { dst, src: a },
                None => match (k(a), k(b)) {
                    (Some(true), Some(false)) => Instr::Copy { dst, src: sel },
                    (Some(false), Some(true)) => Instr::Not { dst, src: sel },
                    (Some(true), _) => Instr::Or2 { dst, a: sel, b },
                    (Some(false), _) => Instr::AndNot { dst, a: b, b: sel },
                    (_, Some(true)) => Instr::OrNot { dst, a, b: sel },
                    (_, Some(false)) => Instr::And2 { dst, a: sel, b: a },
                    (None, None) => {
                        if let Some(x) = iv(sel) {
                            Instr::Mux {
                                dst,
                                sel: x,
                                a: b,
                                b: a,
                            }
                        } else if sel == a {
                            Instr::Or2 { dst, a: sel, b } // s ? s : b == s | b
                        } else if sel == b {
                            Instr::And2 { dst, a: sel, b: a } // s ? a : s == s & a
                        } else {
                            break;
                        }
                    }
                },
            },
            Instr::LatchEn { dst, d, en } => match k(en) {
                Some(true) => Instr::Copy { dst, src: d },
                Some(false) => return None, // never enabled: holds forever
                None if d == dst => return None, // recaptures its own value
                None => break,
            },
        };
        stats.folded += 1;
        cur = next;
    }
    Some(cur)
}

/// Whether `net` is (re)computed during `phase`, i.e. gets an instruction.
fn active_in_phase(netlist: &Netlist, net: NetId, phase: LatchPhase) -> bool {
    match netlist.gate(net) {
        Gate::Input | Gate::Const(_) | Gate::Dff { .. } => false,
        Gate::Latch { phase: lp, .. } => *lp == phase,
        _ => true,
    }
}

/// Emits the instruction tape for one phase: lowers the phase-active gates
/// in the dependency order of [`check::topo_order_in_phase`] (acyclic by
/// precondition — the same edge definition the structural check and the
/// scalar simulator use), so every instruction's operands are settled
/// before it executes.
fn emit_phase(netlist: &Netlist, phase: LatchPhase, args: &mut Vec<u32>) -> Vec<Instr> {
    check::topo_order_in_phase(netlist, phase)
        .into_iter()
        .filter(|&v| active_in_phase(netlist, v, phase))
        .filter_map(|v| lower_gate(netlist, v, args))
        .collect()
}

/// Lowers one gate to an instruction (`None` for gates with no evaluation
/// step in any phase — unreachable here, kept total for clarity).
fn lower_gate(netlist: &Netlist, net: NetId, args: &mut Vec<u32>) -> Option<Instr> {
    let dst = net.0;
    Some(match netlist.gate(net) {
        Gate::Input | Gate::Const(_) | Gate::Dff { .. } => return None,
        Gate::Buf(a) => Instr::Copy { dst, src: a.0 },
        Gate::Wire { src } => Instr::Copy {
            dst,
            src: src.expect("checked by check_bound").0,
        },
        Gate::Not(a) => Instr::Not { dst, src: a.0 },
        Gate::And(v) => match v.as_slice() {
            [] => Instr::Fill { dst, ones: true },
            [a] => Instr::Copy { dst, src: a.0 },
            [a, b] => Instr::And2 {
                dst,
                a: a.0,
                b: b.0,
            },
            many => {
                let start = args.len() as u32;
                args.extend(many.iter().map(|a| a.0));
                Instr::AndN {
                    dst,
                    start,
                    len: many.len() as u32,
                }
            }
        },
        Gate::Or(v) => match v.as_slice() {
            [] => Instr::Fill { dst, ones: false },
            [a] => Instr::Copy { dst, src: a.0 },
            [a, b] => Instr::Or2 {
                dst,
                a: a.0,
                b: b.0,
            },
            many => {
                let start = args.len() as u32;
                args.extend(many.iter().map(|a| a.0));
                Instr::OrN {
                    dst,
                    start,
                    len: many.len() as u32,
                }
            }
        },
        Gate::Xor(a, b) => Instr::Xor2 {
            dst,
            a: a.0,
            b: b.0,
        },
        Gate::Mux { sel, a, b } => Instr::Mux {
            dst,
            sel: sel.0,
            a: a.0,
            b: b.0,
        },
        Gate::Latch { d, en, .. } => {
            let d = d.expect("checked by check_bound").0;
            match en {
                Some(en) => Instr::LatchEn { dst, d, en: en.0 },
                None => Instr::Copy { dst, src: d },
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Netlist;

    #[test]
    fn compile_rejects_unbound_and_cyclic() {
        let mut n = Netlist::new("bad");
        let q = n.dff(false);
        assert!(matches!(
            Program::compile(&n).unwrap_err(),
            NetlistError::UnboundState { .. }
        ));
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        Program::compile(&n).unwrap();

        let mut c = Netlist::new("cyc");
        let l = c.latch(LatchPhase::High, false);
        let inv = c.not(l);
        c.bind_latch(l, inv).unwrap();
        assert!(matches!(
            Program::compile(&c).unwrap_err(),
            NetlistError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn operands_precede_uses_in_both_tapes() {
        let mut n = Netlist::new("order");
        let a = n.input("a");
        let b = n.input("b");
        // Deliberately build consumers before producers are referenced in
        // index order via a late-bound wire.
        let w = n.wire();
        let x = n.and2(w, b);
        let y = n.or2(x, a);
        n.bind_wire(w, y).unwrap();
        // y -> x -> w is a combinational cycle; break it with a fresh net.
        let mut n = Netlist::new("order2");
        let a = n.input("a");
        let b = n.input("b");
        let w = n.wire();
        let x = n.and2(w, b);
        let _y = n.or2(x, a);
        let src = n.xor(a, b);
        n.bind_wire(w, src).unwrap();
        let p = Program::compile(&n).unwrap();
        for tape in [p.high(), p.low()] {
            let mut written = vec![false; p.num_slots()];
            for i in tape {
                let (dst, operands): (u32, Vec<u32>) = match *i {
                    Instr::Fill { dst, .. } => (dst, vec![]),
                    Instr::Copy { dst, src } | Instr::Not { dst, src } => (dst, vec![src]),
                    Instr::And2 { dst, a, b }
                    | Instr::Or2 { dst, a, b }
                    | Instr::Xor2 { dst, a, b }
                    | Instr::AndNot { dst, a, b }
                    | Instr::OrNot { dst, a, b } => (dst, vec![a, b]),
                    Instr::AndN { dst, start, len } | Instr::OrN { dst, start, len } => (
                        dst,
                        p.args()[start as usize..(start + len) as usize].to_vec(),
                    ),
                    Instr::Mux { dst, sel, a, b } => (dst, vec![sel, a, b]),
                    Instr::LatchEn { dst, d, en } => (dst, vec![d, en]),
                };
                for op in operands {
                    let is_source = matches!(
                        n.gate(NetId(op)),
                        Gate::Input | Gate::Const(_) | Gate::Dff { .. } | Gate::Latch { .. }
                    );
                    assert!(
                        written[op as usize] || is_source,
                        "instruction for slot {dst} reads unsettled slot {op}"
                    );
                }
                written[dst as usize] = true;
            }
        }
    }

    #[test]
    fn nary_gates_use_operand_pool() {
        let mut n = Netlist::new("nary");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.and([a, b, c]);
        let _ = n.or([a, b, c, x]);
        let p = Program::compile(&n).unwrap();
        // Both phase tapes re-evaluate the combinational gates, so the
        // operand pool holds one run per phase: (3 + 4) * 2.
        assert_eq!(p.args().len(), 14);
        assert!(p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::AndN { len: 3, .. })));
        assert!(p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::OrN { len: 4, .. })));
    }

    #[test]
    fn latch_phases_split_across_tapes() {
        let mut n = Netlist::new("ms");
        let a = n.input("a");
        let h = n.latch(LatchPhase::High, false);
        n.bind_latch(h, a).unwrap();
        let l = n.latch(LatchPhase::Low, false);
        n.bind_latch(l, h).unwrap();
        let p = Program::compile(&n).unwrap();
        assert!(p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == h.0)));
        assert!(!p
            .high()
            .iter()
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == l.0)));
        assert!(p
            .low()
            .iter()
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == l.0)));
    }

    /// Runs both programs cycle by cycle on the same input pattern and
    /// compares the given nets after every cycle (via a wide backend at
    /// lane 0 — the only Program executor in this crate).
    fn cosim_programs(n: &Netlist, optimized: Program, probes: &[NetId], cycles: usize) {
        use crate::wide::WideSim;
        let mut reference = WideSim::<1>::new(n).unwrap();
        let mut opt = WideSim::<1>::from_program(optimized);
        let inputs = n.inputs().to_vec();
        for t in 0..cycles {
            let drive: Vec<(NetId, u64)> = inputs
                .iter()
                .enumerate()
                .map(|(i, &inp)| {
                    let x = (t as u64 + 3).wrapping_mul(i as u64 + 7);
                    (inp, x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                })
                .collect();
            reference.cycle(&drive).unwrap();
            opt.cycle(&drive).unwrap();
            for &p in probes {
                assert_eq!(
                    reference.value(p),
                    opt.value(p),
                    "cycle {t} net {}",
                    n.net_name(p)
                );
            }
        }
    }

    #[test]
    fn peephole_fuses_and_preserves_outputs() {
        // The x & !y / x | !y shapes of elastic controllers must fuse, and
        // the observed output must stay cycle-exact.
        let mut n = Netlist::new("fuse");
        let a = n.input("a");
        let b = n.input("b");
        let q = n.dff(false);
        let kill = n.and_not(a, b); // Not + And2 -> AndNot
        let nb = n.not(b);
        let keep = n.or2(q, nb); // Not + Or2 -> OrNot (nb also feeds kill path)
        let d = n.xor(kill, keep);
        n.bind_dff(q, d).unwrap();
        let out = n.or2(kill, keep);
        n.mark_output(out).unwrap();
        let (p, stats) = Program::compile_optimized(&n).unwrap();
        assert!(stats.fused >= 2, "{stats:?}");
        assert!(stats.instrs_after < stats.instrs_before, "{stats:?}");
        assert!(
            p.low()
                .iter()
                .any(|i| matches!(i, Instr::AndNot { .. } | Instr::OrNot { .. })),
            "fused ops survive into the tape: {:?}",
            p.low()
        );
        cosim_programs(&n, p, &[out, q], 24);
    }

    #[test]
    fn peephole_drops_high_tape_of_latch_free_logic() {
        // Without latches, nothing observes the high-phase recomputation:
        // combinational values are only consumed by the flip-flop capture
        // and end-of-cycle probes, both after the low tape.
        let mut n = Netlist::new("ffonly");
        let a = n.input("a");
        let q = n.dff(false);
        let d = n.xor(q, a);
        n.bind_dff(q, d).unwrap();
        let out = n.and2(q, a);
        n.mark_output(out).unwrap();
        let (p, _) = Program::compile_optimized(&n).unwrap();
        assert!(p.high().is_empty(), "high tape dead: {:?}", p.high());
        assert!(!p.low().is_empty());
        cosim_programs(&n, p, &[out, q], 16);
    }

    #[test]
    fn peephole_keeps_latch_phase_reads_alive() {
        // A high-phase latch samples its data during the high phase, so the
        // high-tape computation of its input cone must survive.
        let mut n = Netlist::new("latched");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and2(a, b);
        let h = n.latch(LatchPhase::High, false);
        n.bind_latch(h, x).unwrap();
        let out = n.or2(h, a);
        n.mark_output(out).unwrap();
        let (p, _) = Program::compile_optimized(&n).unwrap();
        assert!(
            p.high().iter().any(|i| i.dst() == x.0),
            "latch data cone stays in the high tape: {:?}",
            p.high()
        );
        cosim_programs(&n, p, &[out, h], 16);
    }

    #[test]
    fn peephole_folds_constants_and_copies() {
        let mut n = Netlist::new("konst");
        let a = n.input("a");
        let zero = n.constant(false);
        let one = n.constant(true);
        let w = n.wire();
        n.bind_wire(w, a).unwrap(); // Copy chain
        let x = n.and2(w, one); // = a
        let y = n.or2(x, zero); // = a
        let m = n.mux(one, y, zero); // = a
        let dead = n.xor(zero, zero); // never observed
        let _ = dead;
        n.mark_output(m).unwrap();
        let (p, stats) = Program::compile_optimized(&n).unwrap();
        assert!(stats.folded > 0, "{stats:?}");
        // Everything collapses to (at most) a copy of the input per tape.
        assert!(
            p.high().len() + p.low().len() <= 2,
            "high {:?} low {:?}",
            p.high(),
            p.low()
        );
        cosim_programs(&n, p, &[m], 8);
    }

    #[test]
    fn peephole_removes_never_enabled_latch() {
        let mut n = Netlist::new("hold");
        let a = n.input("a");
        let zero = n.constant(false);
        let l = n.latch_en(LatchPhase::High, zero, true);
        n.bind_latch(l, a).unwrap();
        let out = n.or2(l, a);
        n.mark_output(out).unwrap();
        let (p, _) = Program::compile_optimized(&n).unwrap();
        assert!(
            !p.high().iter().any(|i| i.dst() == l.0),
            "held latch has no instruction: {:?}",
            p.high()
        );
        cosim_programs(&n, p, &[out, l], 10);
    }

    #[test]
    fn ff_commits_and_init_recorded() {
        let mut n = Netlist::new("ff");
        let q = n.dff(true);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        let k = n.constant(true);
        let _ = k;
        let p = Program::compile(&n).unwrap();
        assert_eq!(p.ffs(), &[FfCommit { q: q.0, d: d.0 }]);
        assert!(p.init()[q.index()]);
        assert!(p.init()[k.index()]);
        assert_eq!(p.state_nets(), &[q]);
    }

    /// A few-dozen-gate netlist with both phases populated, for block tests.
    fn blocky_netlist() -> Netlist {
        let mut n = Netlist::new("blocky");
        let a = n.input("a");
        let b = n.input("b");
        let mut x = a;
        for i in 0..24 {
            let l = n.latch(
                if i % 2 == 0 {
                    LatchPhase::High
                } else {
                    LatchPhase::Low
                },
                false,
            );
            n.bind_latch(l, x).unwrap();
            x = if i % 3 == 0 {
                n.and2(l, b)
            } else {
                n.xor(l, a)
            };
        }
        n.mark_output(x).unwrap();
        n
    }

    /// Asserts `plan`'s ranges partition `0..len` in order without gaps.
    fn assert_partitions(blocks: &[(usize, usize)], len: usize) {
        let mut at = 0usize;
        for &(s, e) in blocks {
            assert_eq!(s, at, "blocks out of order or gapped: {blocks:?}");
            assert!(e > s, "empty block: {blocks:?}");
            at = e;
        }
        assert_eq!(at, len, "blocks do not cover the tape: {blocks:?}");
    }

    #[test]
    fn block_plan_partitions_tapes_in_order() {
        let n = blocky_netlist();
        let p = Program::compile(&n).unwrap();
        for budget in [1, 64, 256, 4096, usize::MAX] {
            let plan = p.block_plan(4, budget);
            assert_partitions(plan.high(), p.high().len());
            assert_partitions(plan.low(), p.low().len());
            assert_eq!(plan.budget_bytes(), budget);
            assert!(!plan.is_empty());
        }
    }

    #[test]
    fn block_plan_single_block_when_footprint_fits() {
        let n = blocky_netlist();
        let p = Program::compile(&n).unwrap();
        let plan = p.block_plan(8, p.footprint_bytes(8));
        assert_eq!(plan.high(), &[(0, p.high().len())]);
        assert_eq!(plan.low(), &[(0, p.low().len())]);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn block_plan_tiny_budget_degrades_to_per_instruction() {
        let n = blocky_netlist();
        let p = Program::compile(&n).unwrap();
        // One byte can never hold even a single slot, so every instruction
        // becomes its own block rather than the planner failing.
        let plan = p.block_plan(1, 1);
        assert_eq!(plan.high().len(), p.high().len());
        assert_eq!(plan.low().len(), p.low().len());
        assert_partitions(plan.high(), p.high().len());
    }

    #[test]
    fn footprint_scales_with_width() {
        let n = blocky_netlist();
        let p = Program::compile(&n).unwrap();
        assert_eq!(p.footprint_bytes(1), p.num_slots() * 8);
        assert_eq!(p.footprint_bytes(8), p.num_slots() * 64);
    }
}
