use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;

/// Identifier of a net (equivalently, of its driving gate — every net has
/// exactly one driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a [`NetId`] from a dense index, without validating it
    /// against any netlist. External analyses (the `elastic_lint` tape
    /// passes) need this to turn [`crate::levelize::Instr`] slot indices
    /// back into net ids; accessors on [`Netlist`] still bounds-check.
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Active phase of a transparent latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatchPhase {
    /// Transparent while the clock is high (the paper's `H` label).
    High,
    /// Transparent while the clock is low (the paper's `L` label).
    Low,
}

impl LatchPhase {
    /// The other phase.
    pub fn opposite(self) -> LatchPhase {
        match self {
            LatchPhase::High => LatchPhase::Low,
            LatchPhase::Low => LatchPhase::High,
        }
    }
}

/// The driver of one net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// Primary input; its value is supplied per cycle by the testbench.
    Input,
    /// Constant driver.
    Const(bool),
    /// Buffer (used by exporters to alias nets).
    Buf(NetId),
    /// Late-bound alias: behaves like [`Gate::Buf`] once bound via
    /// [`Netlist::bind_wire`]. Wires let mutually-referencing blocks (such
    /// as elastic controllers exchanging valid/stop rails) be emitted one
    /// block at a time.
    Wire {
        /// The driven source, `None` until bound.
        src: Option<NetId>,
    },
    /// Inverter.
    Not(NetId),
    /// N-ary conjunction. Empty input list is constant true.
    And(Vec<NetId>),
    /// N-ary disjunction. Empty input list is constant false.
    Or(Vec<NetId>),
    /// Exclusive or of two nets.
    Xor(NetId, NetId),
    /// Two-way multiplexer: `if sel { a } else { b }` — the paper's
    /// `z = if s then a else b`.
    Mux {
        /// Select input.
        sel: NetId,
        /// Output when `sel` is true.
        a: NetId,
        /// Output when `sel` is false.
        b: NetId,
    },
    /// Rising-edge D flip-flop. `d == None` until bound via
    /// [`Netlist::bind_dff`], which allows feedback loops.
    Dff {
        /// Data input (next-state function).
        d: Option<NetId>,
        /// Power-up value.
        init: bool,
    },
    /// Transparent latch, optionally gated by an enable (the datapath
    /// latches of the paper are enabled by the elastic controllers).
    Latch {
        /// Data input.
        d: Option<NetId>,
        /// Optional enable: when present and false, the latch holds even
        /// while transparent (clock gating).
        en: Option<NetId>,
        /// Active phase.
        phase: LatchPhase,
        /// Power-up value.
        init: bool,
    },
}

impl Gate {
    /// Nets read combinationally by this gate *during evaluation*.
    ///
    /// Flip-flops read nothing combinationally (their `d` is sampled at the
    /// clock edge); latches read `d`/`en` only while transparent, which the
    /// structural checks handle phase by phase.
    pub fn comb_inputs(&self) -> Vec<NetId> {
        match self {
            Gate::Input | Gate::Const(_) | Gate::Dff { .. } => Vec::new(),
            Gate::Buf(a) | Gate::Not(a) => vec![*a],
            Gate::Wire { src } => src.iter().copied().collect(),
            Gate::And(v) | Gate::Or(v) => v.clone(),
            Gate::Xor(a, b) => vec![*a, *b],
            Gate::Mux { sel, a, b } => vec![*sel, *a, *b],
            Gate::Latch { d, en, .. } => {
                let mut v = Vec::new();
                if let Some(d) = d {
                    v.push(*d);
                }
                if let Some(en) = en {
                    v.push(*en);
                }
                v
            }
        }
    }

    /// Whether this gate holds state across cycles.
    pub fn is_stateful(&self) -> bool {
        matches!(self, Gate::Dff { .. } | Gate::Latch { .. })
    }

    /// Short lowercase kind label for diagnostics (`"and"`, `"latch.H"`,
    /// ...), so cycle reports can say *what* each net on the loop is, not
    /// just its name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Gate::Input => "input",
            Gate::Const(_) => "const",
            Gate::Buf(_) => "buf",
            Gate::Wire { .. } => "wire",
            Gate::Not(_) => "not",
            Gate::And(_) => "and",
            Gate::Or(_) => "or",
            Gate::Xor(_, _) => "xor",
            Gate::Mux { .. } => "mux",
            Gate::Dff { .. } => "dff",
            Gate::Latch {
                phase: LatchPhase::High,
                ..
            } => "latch.H",
            Gate::Latch {
                phase: LatchPhase::Low,
                ..
            } => "latch.L",
        }
    }
}

/// A flat gate-level netlist.
///
/// Construction is incremental: each builder method allocates a net driven
/// by the new gate and returns its [`NetId`]. Sequential elements are
/// allocated first and bound to their data inputs later, so feedback loops
/// can be expressed naturally:
///
/// ```
/// use elastic_netlist::Netlist;
///
/// # fn main() -> Result<(), elastic_netlist::NetlistError> {
/// let mut n = Netlist::new("counter_bit");
/// let q = n.dff(false);
/// let t = n.input("toggle");
/// let d = n.xor(q, t);
/// n.bind_dff(q, d)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    names: Vec<Option<String>>,
    by_name: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist with a module name (used by exporters).
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (= number of gates).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the netlist is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    fn push(&mut self, gate: Gate) -> NetId {
        self.gates.push(gate);
        self.names.push(None);
        NetId(self.gates.len() as u32 - 1)
    }

    /// Adds a primary input with a name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (inputs must be addressable).
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(Gate::Input);
        self.inputs.push(id);
        let name = name.into();
        self.set_name(id, name.clone())
            .unwrap_or_else(|_| panic!("duplicate input name {name:?}"));
        id
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.push(Gate::Const(value))
    }

    /// Adds a buffer of `a`.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(Gate::Buf(a))
    }

    /// Adds an inverter of `a`.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(Gate::Not(a))
    }

    /// Allocates a late-bound wire; bind its driver later with
    /// [`Netlist::bind_wire`].
    pub fn wire(&mut self) -> NetId {
        self.push(Gate::Wire { src: None })
    }

    /// Binds the driver of wire `w`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadBind`] if `w` is not an unbound wire;
    /// [`NetlistError::UnknownNet`] if either net is out of range.
    pub fn bind_wire(&mut self, w: NetId, src: NetId) -> Result<(), NetlistError> {
        self.check_net(w)?;
        self.check_net(src)?;
        match &mut self.gates[w.index()] {
            Gate::Wire { src: slot @ None } => {
                *slot = Some(src);
                Ok(())
            }
            _ => Err(NetlistError::BadBind(w)),
        }
    }

    /// Adds an N-ary AND of `inputs`. An empty list is constant true.
    pub fn and<I: IntoIterator<Item = NetId>>(&mut self, inputs: I) -> NetId {
        self.push(Gate::And(inputs.into_iter().collect()))
    }

    /// Adds a two-input AND (convenience over [`Netlist::and`]).
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.and([a, b])
    }

    /// Adds an N-ary OR of `inputs`. An empty list is constant false.
    pub fn or<I: IntoIterator<Item = NetId>>(&mut self, inputs: I) -> NetId {
        self.push(Gate::Or(inputs.into_iter().collect()))
    }

    /// Adds a two-input OR (convenience over [`Netlist::or`]).
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.or([a, b])
    }

    /// Adds `a AND NOT b` — the "kill"-style gating that appears throughout
    /// the elastic controllers.
    pub fn and_not(&mut self, a: NetId, b: NetId) -> NetId {
        let nb = self.not(b);
        self.and([a, nb])
    }

    /// Adds a two-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Xor(a, b))
    }

    /// Adds a 2:1 multiplexer `if sel { a } else { b }`.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.push(Gate::Mux { sel, a, b })
    }

    /// Allocates a D flip-flop with power-up value `init`; bind its data
    /// input later with [`Netlist::bind_dff`].
    pub fn dff(&mut self, init: bool) -> NetId {
        self.push(Gate::Dff { d: None, init })
    }

    /// Allocates and immediately binds a D flip-flop.
    pub fn dff_bound(&mut self, d: NetId, init: bool) -> NetId {
        self.push(Gate::Dff { d: Some(d), init })
    }

    /// Binds the data input of flip-flop `q`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadBind`] if `q` is not an unbound flip-flop;
    /// [`NetlistError::UnknownNet`] if either net is out of range.
    pub fn bind_dff(&mut self, q: NetId, d: NetId) -> Result<(), NetlistError> {
        self.check_net(q)?;
        self.check_net(d)?;
        match &mut self.gates[q.index()] {
            Gate::Dff { d: slot @ None, .. } => {
                *slot = Some(d);
                Ok(())
            }
            _ => Err(NetlistError::BadBind(q)),
        }
    }

    /// Allocates a transparent latch; bind its data input later with
    /// [`Netlist::bind_latch`].
    pub fn latch(&mut self, phase: LatchPhase, init: bool) -> NetId {
        self.push(Gate::Latch {
            d: None,
            en: None,
            phase,
            init,
        })
    }

    /// Allocates an enable-gated transparent latch (datapath style).
    pub fn latch_en(&mut self, phase: LatchPhase, en: NetId, init: bool) -> NetId {
        self.push(Gate::Latch {
            d: None,
            en: Some(en),
            phase,
            init,
        })
    }

    /// Binds the data input of latch `q`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadBind`] if `q` is not an unbound latch;
    /// [`NetlistError::UnknownNet`] if either net is out of range.
    pub fn bind_latch(&mut self, q: NetId, d: NetId) -> Result<(), NetlistError> {
        self.check_net(q)?;
        self.check_net(d)?;
        match &mut self.gates[q.index()] {
            Gate::Latch { d: slot @ None, .. } => {
                *slot = Some(d);
                Ok(())
            }
            _ => Err(NetlistError::BadBind(q)),
        }
    }

    /// Marks `net` as a primary output (affects exporters only).
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is out of range.
    pub fn mark_output(&mut self, net: NetId) -> Result<(), NetlistError> {
        self.check_net(net)?;
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
        Ok(())
    }

    /// Replaces the primary-output list with `nets` (deduplicated, in the
    /// given order). This is the observability hook of
    /// [`opt::optimize_observed`](crate::opt::optimize_observed): dead-code
    /// elimination keeps exactly the cones of the outputs, so narrowing the
    /// output set narrows what a downstream simulator has to evaluate.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if any net is out of range (the output
    /// list is left unchanged).
    pub fn set_outputs(&mut self, nets: &[NetId]) -> Result<(), NetlistError> {
        for &n in nets {
            self.check_net(n)?;
        }
        self.outputs.clear();
        for &n in nets {
            if !self.outputs.contains(&n) {
                self.outputs.push(n);
            }
        }
        Ok(())
    }

    /// Assigns a display name to a net (required for MC atoms & exporters).
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateName`] if the name is taken,
    /// [`NetlistError::UnknownNet`] if `net` is out of range.
    pub fn set_name(&mut self, net: NetId, name: impl Into<String>) -> Result<(), NetlistError> {
        self.check_net(net)?;
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        if let Some(old) = self.names[net.index()].take() {
            self.by_name.remove(&old);
        }
        self.by_name.insert(name.clone(), net);
        self.names[net.index()] = Some(name);
        Ok(())
    }

    /// Looks up a net by display name.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownName`] if no net has this name.
    pub fn find(&self, name: &str) -> Result<NetId, NetlistError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownName(name.into()))
    }

    /// The display name of `net`, or a synthesized `w<i>` fallback.
    pub fn net_name(&self, net: NetId) -> String {
        self.names
            .get(net.index())
            .and_then(Clone::clone)
            .unwrap_or_else(|| format!("w{}", net.index()))
    }

    /// The gate driving `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn gate(&self, net: NetId) -> &Gate {
        &self.gates[net.index()]
    }

    /// Iterator over all net ids in index order.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + '_ {
        (0..self.gates.len() as u32).map(NetId)
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All stateful nets (flip-flops and latches) in index order.
    pub fn state_elements(&self) -> Vec<NetId> {
        self.nets()
            .filter(|&n| self.gates[n.index()].is_stateful())
            .collect()
    }

    /// All nets that carry a display name, as `(name, id)` pairs in net
    /// order. These are the observable atoms for the model checker.
    pub fn named_nets(&self) -> Vec<(&str, NetId)> {
        self.nets()
            .filter_map(|n| self.names[n.index()].as_deref().map(|s| (s, n)))
            .collect()
    }

    /// Verifies that every flip-flop and latch has a bound data input.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnboundState`] naming the first offender.
    pub fn check_bound(&self) -> Result<(), NetlistError> {
        for n in self.nets() {
            match &self.gates[n.index()] {
                Gate::Dff { d: None, .. }
                | Gate::Latch { d: None, .. }
                | Gate::Wire { src: None } => {
                    return Err(NetlistError::UnboundState {
                        net: n,
                        name: self.net_name(n),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn check_net(&self, net: NetId) -> Result<(), NetlistError> {
        if net.index() >= self.gates.len() {
            return Err(NetlistError::UnknownNet(net));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and2(a, b);
        n.set_name(x, "x").unwrap();
        assert_eq!(n.find("x").unwrap(), x);
        assert_eq!(n.net_name(x), "x");
        assert_eq!(n.inputs(), &[a, b]);
        assert_eq!(n.gate(x), &Gate::And(vec![a, b]));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.constant(true);
        assert_eq!(
            n.set_name(b, "a").unwrap_err(),
            NetlistError::DuplicateName("a".into())
        );
        let _ = a;
    }

    #[test]
    fn unbound_dff_detected() {
        let mut n = Netlist::new("m");
        let q = n.dff(false);
        assert!(
            matches!(n.check_bound().unwrap_err(), NetlistError::UnboundState { net, .. } if net == q)
        );
        let d = n.constant(true);
        n.bind_dff(q, d).unwrap();
        n.check_bound().unwrap();
    }

    #[test]
    fn double_bind_rejected() {
        let mut n = Netlist::new("m");
        let q = n.dff(false);
        let d = n.constant(true);
        n.bind_dff(q, d).unwrap();
        assert_eq!(n.bind_dff(q, d).unwrap_err(), NetlistError::BadBind(q));
    }

    #[test]
    fn bind_kind_checked() {
        let mut n = Netlist::new("m");
        let l = n.latch(LatchPhase::High, false);
        let d = n.constant(false);
        assert_eq!(n.bind_dff(l, d).unwrap_err(), NetlistError::BadBind(l));
        n.bind_latch(l, d).unwrap();
    }

    #[test]
    fn comb_inputs_reflect_evaluation_deps() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let q = n.dff_bound(a, false);
        assert!(n.gate(q).comb_inputs().is_empty(), "dff cuts comb paths");
        let l = n.latch(LatchPhase::Low, false);
        n.bind_latch(l, a).unwrap();
        assert_eq!(
            n.gate(l).comb_inputs(),
            vec![a],
            "latches read d when transparent"
        );
    }

    #[test]
    fn fallback_names() {
        let mut n = Netlist::new("m");
        let c = n.constant(false);
        assert_eq!(n.net_name(c), "w0");
    }

    #[test]
    fn outputs_deduplicated() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        n.mark_output(a).unwrap();
        n.mark_output(a).unwrap();
        assert_eq!(n.outputs().len(), 1);
    }
}
