//! Bit-parallel compiled simulation: up to `W × 64` independent trials per
//! step.
//!
//! [`WideSim<W>`] executes a levelized [`Program`] with every value slot
//! widened to `[u64; W]`: bit *k* of word *w* belongs to trial (*lane*)
//! `w·64 + k`, so one pass over the instruction tape — one decode — drives
//! up to 512 independent Monte Carlo schedules (`W ∈ {1, 2, 4, 8}`) with
//! word-wide AND/OR/XOR/NOT/MUX operations and batched flip-flop commits.
//! The inner loops are const-generic over `W`, so the compiler unrolls and
//! vectorizes them per width. [`WideSimulator`] is the single-word
//! (`W = 1`) instance with the full per-lane convenience API. This is the
//! engine behind the paper's randomized experiments (Sect. 6.1, Figs. 5–9,
//! Table 1): the netlist is compiled once and the per-trial cost drops by
//! roughly the lane count.
//!
//! Lane 0 of a wide run is bit-exact with [`sim::Simulator`](crate::sim::Simulator)
//! under the same inputs — asserted by the co-simulation harness in
//! `elastic_core::verify` and by property tests over random netlists
//! (including `W > 1` lane-k-equals-scalar-trial-k properties).
//!
//! # Example
//!
//! Pack 64 trials of a toggle flip-flop gated by a per-lane enable: lanes
//! with the enable high toggle every cycle, the rest hold. Lane packing is
//! one bit per trial; extraction reads any net in any lane.
//!
//! ```
//! use elastic_netlist::{Netlist, wide::{WideSimulator, LANES}};
//!
//! # fn main() -> Result<(), elastic_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle_en");
//! let en = n.input("en");
//! let q = n.dff(false);
//! let t = n.xor(q, en); // q' = q ^ en
//! n.bind_dff(q, t)?;
//!
//! let mut sim = WideSimulator::new(&n)?;
//! assert_eq!(LANES, 64);
//! // Lane k enables the toggle iff k is even — one mask drives all trials.
//! let even_lanes: u64 = 0x5555_5555_5555_5555;
//! sim.cycle(&[(en, even_lanes)])?; // toggle captured, visible next cycle
//! sim.cycle(&[(en, even_lanes)])?; // even lanes now show 1
//! assert!(sim.value_lane(q, 0), "lane 0 toggled");
//! assert!(!sim.value_lane(q, 1), "lane 1 never enabled");
//! assert_eq!(sim.value(q), even_lanes, "all 64 trials at once");
//! sim.cycle(&[(en, even_lanes)])?; // even lanes toggle back to 0
//! assert_eq!(sim.value(q), 0);
//! // Extract one lane as a plain bool vector (scalar-simulator layout):
//! // q is back at 0, the next-state t = q ^ en is 1 on the even lane.
//! assert_eq!(sim.lane_values(&[q, t], 2), vec![false, true]);
//! # Ok(())
//! # }
//! ```

use crate::build::{NetId, Netlist};
use crate::error::NetlistError;
use crate::levelize::{BlockPlan, Instr, Program};

/// Number of independent trials evaluated per step (bits in the lane word).
pub const LANES: usize = 64;

/// Lane word with the low `lanes` bits set — the mask covering the live
/// lanes of a (possibly partial) shard. Sharded Monte-Carlo campaigns slice
/// `trials` into `⌈trials/64⌉` words; the final word usually covers fewer
/// than [`LANES`] trials, and masking keeps the dead upper lanes from
/// polluting aggregate statistics.
///
/// # Panics
///
/// Panics if `lanes > LANES` (`lanes == 0` yields the empty mask).
pub const fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "at most LANES lanes per word");
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Per-word live-lane masks for a shard of `lanes` trials on a `W`-word
/// simulator: word `w` covers lanes `w·64 .. w·64+64`, and only the final
/// populated word may be partial (the multi-word generalization of
/// [`lane_mask`]).
///
/// # Panics
///
/// Panics if `lanes > W * LANES`.
pub fn lane_masks<const W: usize>(lanes: usize) -> [u64; W] {
    assert!(lanes <= W * LANES, "at most {} lanes per shard", W * LANES);
    let mut masks = [0u64; W];
    for (w, word) in masks.iter_mut().enumerate() {
        let lo = w * LANES;
        *word = if lanes >= lo + LANES {
            u64::MAX
        } else if lanes > lo {
            lane_mask(lanes - lo)
        } else {
            0
        };
    }
    masks
}

// Thread-safety contract of the wide backend: a compiled `Program` is
// immutable instruction data, so one compilation can be shared by reference
// across a `std::thread::scope` worker pool, and a `WideSim` is plain
// owned state (`Vec<[u64; W]>` words, no interior mutability or aliasing),
// so each worker can clone the power-up prototype and run shards
// independently. The experiment engine in `elastic_bench` relies on both
// bounds; this assertion turns an accidental `Rc`/`RefCell` regression into
// a compile error here rather than a trait-bound error downstream.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<WideSimulator>();
    assert_send_sync::<WideSim<8>>();
};

/// A compiled, bit-parallel simulator running `W ×` [`LANES`] trials at
/// once: every value slot is a `[u64; W]`, and one instruction decode
/// drives all `W` words through a const-generic inner loop.
///
/// The cycle structure matches [`sim::Simulator::cycle`](crate::sim::Simulator::cycle):
/// rising edge (batched flip-flop commit), high-phase tape, low-phase tape,
/// capture of flip-flop data inputs. There is no oscillation error at run
/// time — [`Program::compile`] rejects the offending netlists statically.
///
/// The `W = 1` instance is aliased as [`WideSimulator`] and carries the
/// per-lane convenience API (`value`, `set_input`, `state`, …); wider
/// instances are driven through [`WideSim::cycle_wide`] or the allocation-
/// free [`WideSim::cycle_packed`] hot path.
#[derive(Debug, Clone)]
pub struct WideSim<const W: usize> {
    prog: Program,
    /// One `[u64; W]` per net: bit `k` of word `w` is the value in lane
    /// `w * 64 + k`.
    values: Vec<[u64; W]>,
    /// Flip-flop data captured at the end of the last settle, one entry per
    /// element of [`Program::ffs`].
    captured: Vec<[u64; W]>,
    /// Per-slot input marker for input validation.
    is_input: Vec<bool>,
    time: u64,
}

/// The single-word (64-trial) instance of [`WideSim`] — the backend
/// introduced in PR 2, API-compatible with its original form.
pub type WideSimulator = WideSim<1>;

/// Broadcasts a `bool` to a full lane word.
fn splat(v: bool) -> u64 {
    if v {
        u64::MAX
    } else {
        0
    }
}

impl<const W: usize> WideSim<W> {
    /// Compiles `netlist` (see [`Program::compile`]) and initializes all
    /// lanes to the power-up state.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnboundState`] and
    /// [`NetlistError::CombinationalCycle`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        Ok(Self::from_program(Program::compile(netlist)?))
    }

    /// Wraps an already-compiled — possibly [`Program::peephole`]-optimized
    /// — program, with all lanes at the power-up state. The primary-input
    /// set is taken from [`Program::inputs`].
    ///
    /// On a peephole-optimized program only primary outputs, state elements
    /// and flip-flop captures hold exact per-cycle values; probe other nets
    /// only on an unoptimized program.
    pub fn from_program(prog: Program) -> Self {
        let mut is_input = vec![false; prog.num_slots()];
        for &i in prog.inputs() {
            is_input[i.index()] = true;
        }
        let values: Vec<[u64; W]> = prog.init().iter().map(|&b| [splat(b); W]).collect();
        let captured = prog.ffs().iter().map(|f| values[f.q as usize]).collect();
        WideSim {
            prog,
            values,
            captured,
            is_input,
            time: 0,
        }
    }

    /// Total number of independent trials: `W ×` [`LANES`].
    pub const fn num_lanes() -> usize {
        W * LANES
    }

    /// The levelized program being executed.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Number of completed cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Lane word `w` of any net (meaningful after a settle): bit `k` is the
    /// value in lane `w * 64 + k`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or `w >= W`.
    pub fn word(&self, net: NetId, w: usize) -> u64 {
        self.values[net.index()][w]
    }

    /// Value of one net in one of the `W × 64` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or `lane >= W * 64`.
    pub fn lane(&self, net: NetId, lane: usize) -> bool {
        assert!(lane < W * LANES, "lane {lane} out of range");
        self.values[net.index()][lane / LANES] >> (lane % LANES) & 1 == 1
    }

    /// Sets all `W` words of a primary input for the upcoming settle.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is not a primary input.
    pub fn set_input_words(&mut self, net: NetId, words: [u64; W]) -> Result<(), NetlistError> {
        if net.index() >= self.values.len() || !self.is_input[net.index()] {
            return Err(NetlistError::UnknownNet(net));
        }
        self.values[net.index()] = words;
        Ok(())
    }

    /// Runs one full clock cycle in every lane with word-set inputs: rising
    /// edge (batched flip-flop commit), settle of both phases, capture of
    /// flip-flop data inputs.
    ///
    /// # Errors
    ///
    /// Input errors from [`WideSim::set_input_words`]. Unlike the scalar
    /// interpreter there is no oscillation path — settling is one pass per
    /// phase over the compiled tape.
    pub fn cycle_wide(&mut self, inputs: &[(NetId, [u64; W])]) -> Result<(), NetlistError> {
        self.commit();
        for &(net, words) in inputs {
            self.set_input_words(net, words)?;
        }
        self.finish_cycle();
        Ok(())
    }

    /// Validates a packed-stimulus slot list once, before the hot loop:
    /// every slot must be a primary input.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] naming the first offending slot.
    pub fn check_input_slots(&self, slots: &[u32]) -> Result<(), NetlistError> {
        for &s in slots {
            if s as usize >= self.values.len() || !self.is_input[s as usize] {
                return Err(NetlistError::UnknownNet(NetId(s)));
            }
        }
        Ok(())
    }

    /// Runs one full clock cycle driven by a packed stimulus row: slot
    /// `slots[i]` receives words `row[i*W .. (i+1)*W]`, written straight
    /// into the values arena. This is the allocation-free Monte-Carlo hot
    /// path: no `NetId` validation and no heap traffic per cycle — validate
    /// the slot list once with [`WideSim::check_input_slots`].
    ///
    /// # Panics
    ///
    /// Debug builds assert `row.len() == slots.len() * W` and that every
    /// slot is a primary input; release builds panic on out-of-range slots
    /// via the slice index.
    pub fn cycle_packed(&mut self, slots: &[u32], row: &[u64]) {
        debug_assert_eq!(row.len(), slots.len() * W, "one W-word group per slot");
        self.commit();
        for (i, &s) in slots.iter().enumerate() {
            debug_assert!(self.is_input[s as usize], "slot {s} is not an input");
            let v = &mut self.values[s as usize];
            for w in 0..W {
                v[w] = row[i * W + w];
            }
        }
        self.finish_cycle();
    }

    /// [`cycle_packed`](Self::cycle_packed) with a cache-blocking plan from
    /// [`Program::block_plan`]: each tape runs as its plan's consecutive
    /// instruction ranges. Because the ranges partition the tape in order,
    /// the result is bit-identical to `cycle_packed` for every plan — the
    /// split only bounds the working set touched between block boundaries.
    pub fn cycle_packed_blocked(&mut self, slots: &[u32], row: &[u64], plan: &BlockPlan) {
        debug_assert_eq!(row.len(), slots.len() * W, "one W-word group per slot");
        self.commit();
        for (i, &s) in slots.iter().enumerate() {
            debug_assert!(self.is_input[s as usize], "slot {s} is not an input");
            let v = &mut self.values[s as usize];
            for w in 0..W {
                v[w] = row[i * W + w];
            }
        }
        for &(s, e) in plan.high() {
            Self::run_tape(&mut self.values, &self.prog.high()[s..e], self.prog.args());
        }
        for &(s, e) in plan.low() {
            Self::run_tape(&mut self.values, &self.prog.low()[s..e], self.prog.args());
        }
        for (slot, f) in self.captured.iter_mut().zip(self.prog.ffs()) {
            *slot = self.values[f.d as usize];
        }
        self.time += 1;
    }

    /// Rising edge: commit the captured flip-flop data to the outputs.
    fn commit(&mut self) {
        for (slot, f) in self.captured.iter().zip(self.prog.ffs()) {
            self.values[f.q as usize] = *slot;
        }
    }

    /// Settle both phases, capture flip-flop data, advance time.
    fn finish_cycle(&mut self) {
        self.settle();
        for (slot, f) in self.captured.iter_mut().zip(self.prog.ffs()) {
            *slot = self.values[f.d as usize];
        }
        self.time += 1;
    }

    /// Settles the combinational logic and transparent latches for both
    /// clock phases (high then low) without touching flip-flops: a single
    /// pass over each tape, in dependency order.
    pub fn settle(&mut self) {
        Self::run_tape(&mut self.values, self.prog.high(), self.prog.args());
        Self::run_tape(&mut self.values, self.prog.low(), self.prog.args());
    }

    fn run_tape(values: &mut [[u64; W]], tape: &[Instr], args: &[u32]) {
        for &instr in tape {
            match instr {
                Instr::Fill { dst, ones } => values[dst as usize] = [splat(ones); W],
                Instr::Copy { dst, src } => values[dst as usize] = values[src as usize],
                Instr::Not { dst, src } => {
                    let s = values[src as usize];
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = !s[w];
                    }
                }
                Instr::And2 { dst, a, b } => {
                    let (x, y) = (values[a as usize], values[b as usize]);
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = x[w] & y[w];
                    }
                }
                Instr::Or2 { dst, a, b } => {
                    let (x, y) = (values[a as usize], values[b as usize]);
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = x[w] | y[w];
                    }
                }
                Instr::Xor2 { dst, a, b } => {
                    let (x, y) = (values[a as usize], values[b as usize]);
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = x[w] ^ y[w];
                    }
                }
                Instr::AndNot { dst, a, b } => {
                    let (x, y) = (values[a as usize], values[b as usize]);
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = x[w] & !y[w];
                    }
                }
                Instr::OrNot { dst, a, b } => {
                    let (x, y) = (values[a as usize], values[b as usize]);
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = x[w] | !y[w];
                    }
                }
                Instr::AndN { dst, start, len } => {
                    let mut acc = [u64::MAX; W];
                    for &a in &args[start as usize..(start + len) as usize] {
                        let v = values[a as usize];
                        for w in 0..W {
                            acc[w] &= v[w];
                        }
                    }
                    values[dst as usize] = acc;
                }
                Instr::OrN { dst, start, len } => {
                    let mut acc = [0u64; W];
                    for &a in &args[start as usize..(start + len) as usize] {
                        let v = values[a as usize];
                        for w in 0..W {
                            acc[w] |= v[w];
                        }
                    }
                    values[dst as usize] = acc;
                }
                Instr::Mux { dst, sel, a, b } => {
                    let (s, x, y) = (values[sel as usize], values[a as usize], values[b as usize]);
                    let d = &mut values[dst as usize];
                    for w in 0..W {
                        d[w] = s[w] & x[w] | !s[w] & y[w];
                    }
                }
                Instr::LatchEn { dst, d, en } => {
                    let (e, x) = (values[en as usize], values[d as usize]);
                    let q = &mut values[dst as usize];
                    for w in 0..W {
                        q[w] = e[w] & x[w] | !e[w] & q[w];
                    }
                }
            }
        }
    }
}

impl WideSim<1> {
    /// Sets a primary input across all lanes: bit `k` of `mask` drives lane
    /// `k` for the upcoming settle.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, mask: u64) -> Result<(), NetlistError> {
        self.set_input_words(net, [mask])
    }

    /// Sets a primary input in a single lane, leaving the other lanes as
    /// they are.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is out of range or not a
    /// primary input (checked before anything is read);
    /// [`NetlistError::LaneOutOfRange`] if `lane >= LANES`.
    pub fn set_input_lane(&mut self, net: NetId, lane: usize, v: bool) -> Result<(), NetlistError> {
        if lane >= LANES {
            return Err(NetlistError::LaneOutOfRange { lane, lanes: LANES });
        }
        if net.index() >= self.values.len() || !self.is_input[net.index()] {
            return Err(NetlistError::UnknownNet(net));
        }
        let cur = self.values[net.index()][0];
        self.values[net.index()][0] = cur & !(1 << lane) | (u64::from(v) << lane);
        Ok(())
    }

    /// Lane word of any net (meaningful after a settle): bit `k` is the
    /// value in lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn value(&self, net: NetId) -> u64 {
        self.values[net.index()][0]
    }

    /// Value of one net in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or `lane >= LANES`.
    pub fn value_lane(&self, net: NetId, lane: usize) -> bool {
        assert!(lane < LANES, "lane {lane} out of range");
        self.values[net.index()][0] >> lane & 1 == 1
    }

    /// Extracts one lane across several nets — the wide counterpart of
    /// [`sim::Simulator::values_of`](crate::sim::Simulator::values_of).
    pub fn lane_values(&self, nets: &[NetId], lane: usize) -> Vec<bool> {
        nets.iter().map(|&n| self.value_lane(n, lane)).collect()
    }

    /// Runs one full clock cycle in every lane: rising edge (batched
    /// flip-flop commit), settle of both phases, capture of flip-flop data
    /// inputs.
    ///
    /// # Errors
    ///
    /// Input errors from [`WideSimulator::set_input`]. Unlike the scalar
    /// interpreter there is no oscillation path — settling is one pass per
    /// phase over the compiled tape.
    pub fn cycle(&mut self, inputs: &[(NetId, u64)]) -> Result<(), NetlistError> {
        self.commit();
        for &(net, mask) in inputs {
            self.set_input(net, mask)?;
        }
        self.finish_cycle();
        Ok(())
    }

    /// Snapshot of the state-element lane words, in
    /// [`Netlist::state_elements`] order (wide counterpart of
    /// [`sim::Simulator::state`](crate::sim::Simulator::state)).
    pub fn state(&self) -> Vec<u64> {
        self.prog
            .state_nets()
            .iter()
            .map(|&n| self.values[n.index()][0])
            .collect()
    }

    /// Overwrites the state-element lane words and clears pending flip-flop
    /// captures, so the next [`WideSimulator::cycle`] starts every lane from
    /// exactly this state.
    ///
    /// # Errors
    ///
    /// [`NetlistError::StateWidthMismatch`] when `words.len()` differs from
    /// the number of state elements.
    pub fn load_state(&mut self, words: &[u64]) -> Result<(), NetlistError> {
        let WideSim {
            prog,
            values,
            captured,
            ..
        } = self;
        let state_nets = prog.state_nets();
        if words.len() != state_nets.len() {
            return Err(NetlistError::StateWidthMismatch {
                expected: state_nets.len(),
                got: words.len(),
            });
        }
        for (&net, &w) in state_nets.iter().zip(words) {
            values[net.index()] = [w];
        }
        // Every flip-flop is a state net, so its freshly loaded output is
        // exactly what the next rising edge must commit.
        for (slot, f) in captured.iter_mut().zip(prog.ffs()) {
            *slot = values[f.q as usize];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::LatchPhase;
    use crate::sim::Simulator;

    /// Drives the scalar and wide backends with the same per-lane inputs and
    /// asserts every net matches in every requested lane.
    fn cosim(n: &Netlist, cycles: usize, lane_inputs: &[Vec<Vec<bool>>]) {
        // lane_inputs[lane][cycle][input_idx]
        let lanes = lane_inputs.len();
        let mut wide = WideSimulator::new(n).unwrap();
        let inputs = n.inputs().to_vec();
        let mut scalars: Vec<Simulator> = (0..lanes).map(|_| Simulator::new(n).unwrap()).collect();
        for t in 0..cycles {
            let masks: Vec<(NetId, u64)> = inputs
                .iter()
                .enumerate()
                .map(|(ii, &inp)| {
                    let mut m = 0u64;
                    for (lane, li) in lane_inputs.iter().enumerate() {
                        if li[t][ii] {
                            m |= 1 << lane;
                        }
                    }
                    (inp, m)
                })
                .collect();
            wide.cycle(&masks).unwrap();
            for (lane, sim) in scalars.iter_mut().enumerate() {
                let drive: Vec<(NetId, bool)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(ii, &inp)| (inp, lane_inputs[lane][t][ii]))
                    .collect();
                sim.cycle(&drive).unwrap();
                for net in n.nets() {
                    assert_eq!(
                        wide.value_lane(net, lane),
                        sim.value(net),
                        "cycle {t} lane {lane} net {}",
                        n.net_name(net)
                    );
                }
            }
        }
    }

    fn patterned_inputs(
        lanes: usize,
        cycles: usize,
        num_inputs: usize,
        salt: u64,
    ) -> Vec<Vec<Vec<bool>>> {
        (0..lanes)
            .map(|lane| {
                (0..cycles)
                    .map(|t| {
                        (0..num_inputs)
                            .map(|i| {
                                // Cheap deterministic pattern mixing all three indices.
                                let x = (lane as u64 + 3)
                                    .wrapping_mul(t as u64 + 5)
                                    .wrapping_mul(i as u64 + 7)
                                    .wrapping_add(salt);
                                x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63 == 1
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_scalar_on_mixed_logic() {
        let mut n = Netlist::new("mix");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.and([a, b, c]);
        let y = n.or2(x, a);
        let z = n.xor(y, b);
        let m = n.mux(c, z, y);
        let q = n.dff_bound(m, false);
        let h = n.latch(LatchPhase::High, false);
        n.bind_latch(h, q).unwrap();
        let l = n.latch_en(LatchPhase::Low, a, true);
        n.bind_latch(l, h).unwrap();
        let _out = n.and2(l, q);
        cosim(&n, 12, &patterned_inputs(8, 12, 3, 1));
    }

    #[test]
    fn matches_scalar_on_feedback_ffs() {
        let mut n = Netlist::new("fb");
        let en = n.input("en");
        let q0 = n.dff(false);
        let q1 = n.dff(true);
        let t0 = n.xor(q0, en);
        let t1 = n.mux(en, q0, q1);
        n.bind_dff(q0, t0).unwrap();
        n.bind_dff(q1, t1).unwrap();
        cosim(&n, 16, &patterned_inputs(5, 16, 1, 9));
    }

    #[test]
    fn all_64_lanes_independent() {
        let mut n = Netlist::new("cnt");
        let inc = n.input("inc");
        let q = n.dff(false);
        let d = n.xor(q, inc);
        n.bind_dff(q, d).unwrap();
        let mut sim = WideSimulator::new(&n).unwrap();
        // Lane k toggles only on cycles divisible by (k % 4 + 1).
        for t in 0..8u64 {
            let mut mask = 0u64;
            for lane in 0..LANES as u64 {
                if t % (lane % 4 + 1) == 0 {
                    mask |= 1 << lane;
                }
            }
            sim.cycle(&[(inc, mask)]).unwrap();
        }
        // Recompute expected parity per lane. A DFF shows an input one cycle
        // later, so after 8 cycles only the first 7 inputs are visible.
        for lane in 0..LANES as u64 {
            let toggles = (0..7u64).filter(|t| t % (lane % 4 + 1) == 0).count();
            assert_eq!(
                sim.value_lane(q, lane as usize),
                toggles % 2 == 1,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn enable_through_late_bound_wire_matches_scalar() {
        // Regression: an enable-gated latch whose enable cone passes through
        // a wire with a *higher* net index than the latch. An index-order
        // settle sweep would evaluate the latch against the stale enable and
        // glitch-capture; both backends must use the settled enable.
        let mut n = Netlist::new("hazard");
        let a = n.input("a");
        let en_w = n.wire();
        let l = n.latch_en(LatchPhase::High, en_w, false);
        n.bind_latch(l, a).unwrap();
        let na = n.not(a);
        n.bind_wire(en_w, na).unwrap();
        cosim(&n, 6, &patterned_inputs(4, 6, 1, 21));
        // And explicitly: with a=0 then a=1, en = !a settles to 0 in cycle
        // 2, so the latch must hold its reset value.
        let mut wide = WideSimulator::new(&n).unwrap();
        let mut scalar = Simulator::new(&n).unwrap();
        wide.cycle(&[(a, 0)]).unwrap();
        scalar.cycle(&[(a, false)]).unwrap();
        wide.cycle(&[(a, u64::MAX)]).unwrap();
        scalar.cycle(&[(a, true)]).unwrap();
        assert!(!scalar.value(l), "latch holds: enable settled low");
        assert_eq!(wide.value(l), 0, "wide agrees in every lane");
    }

    #[test]
    fn lane_mask_covers_partial_and_full_words() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(5), 0b1_1111);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(LANES), u64::MAX);
    }

    #[test]
    fn clones_run_independently_across_threads() {
        // The sharding contract: one compiled prototype, one clone per
        // worker, bit-identical results regardless of which thread ran
        // which shard.
        let mut n = Netlist::new("shard");
        let inc = n.input("inc");
        let q = n.dff(false);
        let d = n.xor(q, inc);
        n.bind_dff(q, d).unwrap();
        let proto = WideSimulator::new(&n).unwrap();
        let run = |mask: u64| {
            let mut sim = proto.clone();
            for _ in 0..5 {
                sim.cycle(&[(inc, mask)]).unwrap();
            }
            sim.value(q)
        };
        let expected: Vec<u64> = [0u64, u64::MAX, 0xAAAA_5555_AAAA_5555]
            .iter()
            .map(|&m| run(m))
            .collect();
        let got: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = [0u64, u64::MAX, 0xAAAA_5555_AAAA_5555]
                .iter()
                .map(|&m| s.spawn(move || run(m)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(expected, got);
    }

    #[test]
    fn set_input_validation() {
        let mut n = Netlist::new("v");
        let a = n.input("a");
        let x = n.not(a);
        let mut sim = WideSimulator::new(&n).unwrap();
        assert!(sim.set_input(x, 1).is_err(), "cannot drive a non-input");
        sim.set_input_lane(a, 3, true).unwrap();
        assert_eq!(sim.value(a), 8);
        // Out-of-range lane and non-input nets are typed errors, not panics
        // — and the lane check comes first, before any slot is read.
        assert!(matches!(
            sim.set_input_lane(a, LANES, true),
            Err(NetlistError::LaneOutOfRange {
                lane: 64,
                lanes: 64
            })
        ));
        assert!(matches!(
            sim.set_input_lane(x, 0, true),
            Err(NetlistError::UnknownNet(_))
        ));
        assert!(matches!(
            sim.set_input_lane(NetId(999), 0, true),
            Err(NetlistError::UnknownNet(_))
        ));
        assert_eq!(sim.value(a), 8, "failed calls leave the lanes untouched");
    }

    #[test]
    fn multi_word_lane_matches_single_word() {
        // A 4-word simulator runs 256 trials; lane k must equal lane k % 64
        // of a single-word run driven with the same per-lane bits.
        let mut n = Netlist::new("mw");
        let en = n.input("en");
        let q = n.dff(false);
        let t = n.xor(q, en);
        n.bind_dff(q, t).unwrap();
        let mut wide = WideSim::<4>::new(&n).unwrap();
        let mut narrow = WideSimulator::new(&n).unwrap();
        assert_eq!(WideSim::<4>::num_lanes(), 256);
        let pattern = 0xF0F0_A5A5_0F0F_5A5Au64;
        for step in 0..6u64 {
            let m = pattern.rotate_left(step as u32 * 7);
            wide.cycle_wide(&[(en, [m, !m, m.rotate_left(1), 0])])
                .unwrap();
            narrow.cycle(&[(en, m)]).unwrap();
            for lane in 0..64 {
                assert_eq!(
                    wide.lane(q, lane),
                    narrow.value_lane(q, lane),
                    "word 0 lane {lane} step {step}"
                );
            }
            assert_eq!(wide.word(q, 0), narrow.value(q));
        }
        // Word 3 was driven all-zero: those lanes never toggle.
        assert_eq!(wide.word(q, 3), 0);
    }

    #[test]
    fn cycle_packed_equals_cycle_wide() {
        let mut n = Netlist::new("packed");
        let a = n.input("a");
        let b = n.input("b");
        let q = n.dff(false);
        let d = n.xor(q, a);
        let x = n.and2(d, b);
        n.bind_dff(q, x).unwrap();
        let mut by_net = WideSim::<2>::new(&n).unwrap();
        let mut by_slot = WideSim::<2>::new(&n).unwrap();
        let slots = [a.0, b.0];
        by_slot.check_input_slots(&slots).unwrap();
        assert!(
            by_slot.check_input_slots(&[x.0]).is_err(),
            "non-input slots rejected up front"
        );
        for step in 0..8u64 {
            let row = [
                step.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                !step,
                step.rotate_left(13) ^ 0xAAAA,
                step.wrapping_mul(3),
            ];
            by_net
                .cycle_wide(&[(a, [row[0], row[1]]), (b, [row[2], row[3]])])
                .unwrap();
            by_slot.cycle_packed(&slots, &row);
            assert_eq!(by_net.word(q, 0), by_slot.word(q, 0), "step {step}");
            assert_eq!(by_net.word(q, 1), by_slot.word(q, 1), "step {step}");
        }
        assert_eq!(by_net.time(), by_slot.time());
    }

    #[test]
    fn cycle_packed_blocked_equals_unblocked() {
        // Enough gates across both phases that small budgets force real
        // splits, including latches (whose instructions read their own
        // destination) crossing block boundaries.
        let mut n = Netlist::new("blocked");
        let a = n.input("a");
        let b = n.input("b");
        let q = n.dff(false);
        let mut x = n.xor(q, a);
        for i in 0..20 {
            let l = n.latch(
                if i % 2 == 0 {
                    LatchPhase::High
                } else {
                    LatchPhase::Low
                },
                false,
            );
            n.bind_latch(l, x).unwrap();
            x = if i % 3 == 0 {
                n.and2(l, b)
            } else {
                n.xor(l, a)
            };
        }
        n.bind_dff(q, x).unwrap();
        let prog = Program::compile(&n).unwrap();
        let slots = [a.0, b.0];
        // Budgets from "everything in one block" down to one slot per
        // block (which degrades to per-instruction blocks).
        for budget in [usize::MAX, prog.footprint_bytes(2), 256, 64, 1] {
            let plan = prog.block_plan(2, budget);
            let mut flat = WideSim::<2>::from_program(prog.clone());
            let mut blocked = WideSim::<2>::from_program(prog.clone());
            for step in 0..12u64 {
                let row = [
                    step.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    !step,
                    step.rotate_left(17) ^ 0x5555,
                    step.wrapping_mul(11),
                ];
                flat.cycle_packed(&slots, &row);
                blocked.cycle_packed_blocked(&slots, &row, &plan);
                for net in n.nets() {
                    for w in 0..2 {
                        assert_eq!(
                            flat.word(net, w),
                            blocked.word(net, w),
                            "budget {budget} step {step} net {} word {w}",
                            n.net_name(net)
                        );
                    }
                }
            }
            assert_eq!(flat.time(), blocked.time());
        }
    }

    #[test]
    fn lane_masks_cover_multi_word_shards() {
        assert_eq!(lane_masks::<1>(5), [0b1_1111]);
        assert_eq!(lane_masks::<2>(64), [u64::MAX, 0]);
        assert_eq!(lane_masks::<2>(70), [u64::MAX, 0b11_1111]);
        assert_eq!(lane_masks::<4>(256), [u64::MAX; 4]);
        assert_eq!(lane_masks::<4>(0), [0; 4]);
    }

    #[test]
    fn state_roundtrip_wide() {
        let mut n = Netlist::new("state");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        let mut sim = WideSimulator::new(&n).unwrap();
        assert!(sim.load_state(&[0, 0]).is_err(), "width checked");
        sim.load_state(&[0xFFFF_0000_FFFF_0000]).unwrap();
        assert_eq!(sim.state(), vec![0xFFFF_0000_FFFF_0000]);
        // The loaded state is what the first cycle commits; the toggled
        // value q' = !q becomes visible one cycle later, per lane.
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.value(q), 0xFFFF_0000_FFFF_0000);
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.value(q), !0xFFFF_0000_FFFF_0000u64);
    }

    #[test]
    fn time_advances() {
        let mut n = Netlist::new("t");
        let _ = n.input("a");
        let mut sim = WideSimulator::new(&n).unwrap();
        sim.cycle(&[]).unwrap();
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.time(), 2);
    }
}
