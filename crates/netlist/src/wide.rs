//! Bit-parallel compiled simulation: 64 independent trials per step.
//!
//! [`WideSimulator`] executes a levelized [`Program`] with every value slot
//! widened to a `u64`: bit *k* of every slot belongs to trial (*lane*) *k*,
//! so one pass over the instruction tape advances 64 independent Monte
//! Carlo schedules with word-wide AND/OR/XOR/NOT/MUX operations and batched
//! flip-flop commits. This is the engine behind the paper's randomized
//! experiments (Sect. 6.1, Figs. 5–9, Table 1): the netlist is compiled
//! once and the per-trial cost drops by roughly the lane count.
//!
//! Lane 0 of a wide run is bit-exact with [`sim::Simulator`](crate::sim::Simulator)
//! under the same inputs — asserted by the co-simulation harness in
//! `elastic_core::verify` and by property tests over random netlists.
//!
//! # Example
//!
//! Pack 64 trials of a toggle flip-flop gated by a per-lane enable: lanes
//! with the enable high toggle every cycle, the rest hold. Lane packing is
//! one bit per trial; extraction reads any net in any lane.
//!
//! ```
//! use elastic_netlist::{Netlist, wide::{WideSimulator, LANES}};
//!
//! # fn main() -> Result<(), elastic_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle_en");
//! let en = n.input("en");
//! let q = n.dff(false);
//! let t = n.xor(q, en); // q' = q ^ en
//! n.bind_dff(q, t)?;
//!
//! let mut sim = WideSimulator::new(&n)?;
//! assert_eq!(LANES, 64);
//! // Lane k enables the toggle iff k is even — one mask drives all trials.
//! let even_lanes: u64 = 0x5555_5555_5555_5555;
//! sim.cycle(&[(en, even_lanes)])?; // toggle captured, visible next cycle
//! sim.cycle(&[(en, even_lanes)])?; // even lanes now show 1
//! assert!(sim.value_lane(q, 0), "lane 0 toggled");
//! assert!(!sim.value_lane(q, 1), "lane 1 never enabled");
//! assert_eq!(sim.value(q), even_lanes, "all 64 trials at once");
//! sim.cycle(&[(en, even_lanes)])?; // even lanes toggle back to 0
//! assert_eq!(sim.value(q), 0);
//! // Extract one lane as a plain bool vector (scalar-simulator layout):
//! // q is back at 0, the next-state t = q ^ en is 1 on the even lane.
//! assert_eq!(sim.lane_values(&[q, t], 2), vec![false, true]);
//! # Ok(())
//! # }
//! ```

use crate::build::{NetId, Netlist};
use crate::error::NetlistError;
use crate::levelize::{Instr, Program};

/// Number of independent trials evaluated per step (bits in the lane word).
pub const LANES: usize = 64;

/// Lane word with the low `lanes` bits set — the mask covering the live
/// lanes of a (possibly partial) shard. Sharded Monte-Carlo campaigns slice
/// `trials` into `⌈trials/64⌉` words; the final word usually covers fewer
/// than [`LANES`] trials, and masking keeps the dead upper lanes from
/// polluting aggregate statistics.
///
/// # Panics
///
/// Panics if `lanes > LANES` (`lanes == 0` yields the empty mask).
pub const fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "at most LANES lanes per word");
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

// Thread-safety contract of the wide backend: a compiled `Program` is
// immutable instruction data, so one compilation can be shared by reference
// across a `std::thread::scope` worker pool, and a `WideSimulator` is plain
// owned state (`Vec<u64>` words, no interior mutability or aliasing), so
// each worker can clone the power-up prototype and run shards
// independently. The experiment engine in `elastic_bench` relies on both
// bounds; this assertion turns an accidental `Rc`/`RefCell` regression into
// a compile error here rather than a trait-bound error downstream.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<WideSimulator>();
};

/// A compiled, bit-parallel simulator running [`LANES`] trials at once.
///
/// The cycle structure matches [`sim::Simulator::cycle`](crate::sim::Simulator::cycle):
/// rising edge (batched flip-flop commit), high-phase tape, low-phase tape,
/// capture of flip-flop data inputs. There is no oscillation error at run
/// time — [`Program::compile`] rejects the offending netlists statically.
#[derive(Debug, Clone)]
pub struct WideSimulator {
    prog: Program,
    /// One `u64` per net: bit `k` is the value in lane `k`.
    values: Vec<u64>,
    /// Flip-flop data captured at the end of the last settle, one word per
    /// entry of [`Program::ffs`].
    captured: Vec<u64>,
    /// Per-slot input marker for `set_input` validation.
    is_input: Vec<bool>,
    time: u64,
}

/// Broadcasts a `bool` to a full lane word.
fn splat(v: bool) -> u64 {
    if v {
        u64::MAX
    } else {
        0
    }
}

impl WideSimulator {
    /// Compiles `netlist` (see [`Program::compile`]) and initializes all
    /// lanes to the power-up state.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnboundState`] and
    /// [`NetlistError::CombinationalCycle`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        let mut is_input = vec![false; netlist.len()];
        for &i in netlist.inputs() {
            is_input[i.index()] = true;
        }
        let prog = Program::compile(netlist)?;
        Ok(Self::from_program(prog, is_input))
    }

    /// Wraps an already-compiled program (all lanes at power-up state).
    fn from_program(prog: Program, is_input: Vec<bool>) -> Self {
        let values: Vec<u64> = prog.init().iter().map(|&b| splat(b)).collect();
        let captured = prog.ffs().iter().map(|f| values[f.q as usize]).collect();
        WideSimulator {
            prog,
            values,
            captured,
            is_input,
            time: 0,
        }
    }

    /// The levelized program being executed.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Number of completed cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sets a primary input across all lanes: bit `k` of `mask` drives lane
    /// `k` for the upcoming settle.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, mask: u64) -> Result<(), NetlistError> {
        if net.index() >= self.values.len() || !self.is_input[net.index()] {
            return Err(NetlistError::UnknownNet(net));
        }
        self.values[net.index()] = mask;
        Ok(())
    }

    /// Sets a primary input in a single lane, leaving the other lanes as
    /// they are.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is not a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES` (like [`WideSimulator::value_lane`]).
    pub fn set_input_lane(&mut self, net: NetId, lane: usize, v: bool) -> Result<(), NetlistError> {
        assert!(lane < LANES, "lane {lane} out of range");
        let cur = if net.index() < self.values.len() {
            self.values[net.index()]
        } else {
            0
        };
        self.set_input(net, cur & !(1 << lane) | (u64::from(v) << lane))
    }

    /// Lane word of any net (meaningful after a settle): bit `k` is the
    /// value in lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn value(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// Value of one net in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or `lane >= LANES`.
    pub fn value_lane(&self, net: NetId, lane: usize) -> bool {
        assert!(lane < LANES, "lane {lane} out of range");
        self.values[net.index()] >> lane & 1 == 1
    }

    /// Extracts one lane across several nets — the wide counterpart of
    /// [`sim::Simulator::values_of`](crate::sim::Simulator::values_of).
    pub fn lane_values(&self, nets: &[NetId], lane: usize) -> Vec<bool> {
        nets.iter().map(|&n| self.value_lane(n, lane)).collect()
    }

    /// Runs one full clock cycle in every lane: rising edge (batched
    /// flip-flop commit), settle of both phases, capture of flip-flop data
    /// inputs.
    ///
    /// # Errors
    ///
    /// Input errors from [`WideSimulator::set_input`]. Unlike the scalar
    /// interpreter there is no oscillation path — settling is one pass per
    /// phase over the compiled tape.
    pub fn cycle(&mut self, inputs: &[(NetId, u64)]) -> Result<(), NetlistError> {
        for (slot, f) in self.captured.iter().zip(self.prog.ffs()) {
            self.values[f.q as usize] = *slot;
        }
        for &(net, mask) in inputs {
            self.set_input(net, mask)?;
        }
        self.settle();
        for (slot, f) in self.captured.iter_mut().zip(self.prog.ffs()) {
            *slot = self.values[f.d as usize];
        }
        self.time += 1;
        Ok(())
    }

    /// Settles the combinational logic and transparent latches for both
    /// clock phases (high then low) without touching flip-flops: a single
    /// pass over each tape, in dependency order.
    pub fn settle(&mut self) {
        Self::run_tape(&mut self.values, self.prog.high(), self.prog.args());
        Self::run_tape(&mut self.values, self.prog.low(), self.prog.args());
    }

    fn run_tape(values: &mut [u64], tape: &[Instr], args: &[u32]) {
        for &instr in tape {
            match instr {
                Instr::Fill { dst, ones } => values[dst as usize] = splat(ones),
                Instr::Copy { dst, src } => values[dst as usize] = values[src as usize],
                Instr::Not { dst, src } => values[dst as usize] = !values[src as usize],
                Instr::And2 { dst, a, b } => {
                    values[dst as usize] = values[a as usize] & values[b as usize];
                }
                Instr::Or2 { dst, a, b } => {
                    values[dst as usize] = values[a as usize] | values[b as usize];
                }
                Instr::Xor2 { dst, a, b } => {
                    values[dst as usize] = values[a as usize] ^ values[b as usize];
                }
                Instr::AndN { dst, start, len } => {
                    let mut acc = u64::MAX;
                    for &a in &args[start as usize..(start + len) as usize] {
                        acc &= values[a as usize];
                    }
                    values[dst as usize] = acc;
                }
                Instr::OrN { dst, start, len } => {
                    let mut acc = 0u64;
                    for &a in &args[start as usize..(start + len) as usize] {
                        acc |= values[a as usize];
                    }
                    values[dst as usize] = acc;
                }
                Instr::Mux { dst, sel, a, b } => {
                    let s = values[sel as usize];
                    values[dst as usize] = s & values[a as usize] | !s & values[b as usize];
                }
                Instr::LatchEn { dst, d, en } => {
                    let e = values[en as usize];
                    values[dst as usize] = e & values[d as usize] | !e & values[dst as usize];
                }
            }
        }
    }

    /// Snapshot of the state-element lane words, in
    /// [`Netlist::state_elements`] order (wide counterpart of
    /// [`sim::Simulator::state`](crate::sim::Simulator::state)).
    pub fn state(&self) -> Vec<u64> {
        self.prog
            .state_nets()
            .iter()
            .map(|&n| self.values[n.index()])
            .collect()
    }

    /// Overwrites the state-element lane words and clears pending flip-flop
    /// captures, so the next [`WideSimulator::cycle`] starts every lane from
    /// exactly this state.
    ///
    /// # Errors
    ///
    /// [`NetlistError::StateWidthMismatch`] when `words.len()` differs from
    /// the number of state elements.
    pub fn load_state(&mut self, words: &[u64]) -> Result<(), NetlistError> {
        let WideSimulator {
            prog,
            values,
            captured,
            ..
        } = self;
        let state_nets = prog.state_nets();
        if words.len() != state_nets.len() {
            return Err(NetlistError::StateWidthMismatch {
                expected: state_nets.len(),
                got: words.len(),
            });
        }
        for (&net, &w) in state_nets.iter().zip(words) {
            values[net.index()] = w;
        }
        // Every flip-flop is a state net, so its freshly loaded output is
        // exactly what the next rising edge must commit.
        for (slot, f) in captured.iter_mut().zip(prog.ffs()) {
            *slot = values[f.q as usize];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::LatchPhase;
    use crate::sim::Simulator;

    /// Drives the scalar and wide backends with the same per-lane inputs and
    /// asserts every net matches in every requested lane.
    fn cosim(n: &Netlist, cycles: usize, lane_inputs: &[Vec<Vec<bool>>]) {
        // lane_inputs[lane][cycle][input_idx]
        let lanes = lane_inputs.len();
        let mut wide = WideSimulator::new(n).unwrap();
        let inputs = n.inputs().to_vec();
        let mut scalars: Vec<Simulator> = (0..lanes).map(|_| Simulator::new(n).unwrap()).collect();
        for t in 0..cycles {
            let masks: Vec<(NetId, u64)> = inputs
                .iter()
                .enumerate()
                .map(|(ii, &inp)| {
                    let mut m = 0u64;
                    for (lane, li) in lane_inputs.iter().enumerate() {
                        if li[t][ii] {
                            m |= 1 << lane;
                        }
                    }
                    (inp, m)
                })
                .collect();
            wide.cycle(&masks).unwrap();
            for (lane, sim) in scalars.iter_mut().enumerate() {
                let drive: Vec<(NetId, bool)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(ii, &inp)| (inp, lane_inputs[lane][t][ii]))
                    .collect();
                sim.cycle(&drive).unwrap();
                for net in n.nets() {
                    assert_eq!(
                        wide.value_lane(net, lane),
                        sim.value(net),
                        "cycle {t} lane {lane} net {}",
                        n.net_name(net)
                    );
                }
            }
        }
    }

    fn patterned_inputs(
        lanes: usize,
        cycles: usize,
        num_inputs: usize,
        salt: u64,
    ) -> Vec<Vec<Vec<bool>>> {
        (0..lanes)
            .map(|lane| {
                (0..cycles)
                    .map(|t| {
                        (0..num_inputs)
                            .map(|i| {
                                // Cheap deterministic pattern mixing all three indices.
                                let x = (lane as u64 + 3)
                                    .wrapping_mul(t as u64 + 5)
                                    .wrapping_mul(i as u64 + 7)
                                    .wrapping_add(salt);
                                x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63 == 1
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_scalar_on_mixed_logic() {
        let mut n = Netlist::new("mix");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.and([a, b, c]);
        let y = n.or2(x, a);
        let z = n.xor(y, b);
        let m = n.mux(c, z, y);
        let q = n.dff_bound(m, false);
        let h = n.latch(LatchPhase::High, false);
        n.bind_latch(h, q).unwrap();
        let l = n.latch_en(LatchPhase::Low, a, true);
        n.bind_latch(l, h).unwrap();
        let _out = n.and2(l, q);
        cosim(&n, 12, &patterned_inputs(8, 12, 3, 1));
    }

    #[test]
    fn matches_scalar_on_feedback_ffs() {
        let mut n = Netlist::new("fb");
        let en = n.input("en");
        let q0 = n.dff(false);
        let q1 = n.dff(true);
        let t0 = n.xor(q0, en);
        let t1 = n.mux(en, q0, q1);
        n.bind_dff(q0, t0).unwrap();
        n.bind_dff(q1, t1).unwrap();
        cosim(&n, 16, &patterned_inputs(5, 16, 1, 9));
    }

    #[test]
    fn all_64_lanes_independent() {
        let mut n = Netlist::new("cnt");
        let inc = n.input("inc");
        let q = n.dff(false);
        let d = n.xor(q, inc);
        n.bind_dff(q, d).unwrap();
        let mut sim = WideSimulator::new(&n).unwrap();
        // Lane k toggles only on cycles divisible by (k % 4 + 1).
        for t in 0..8u64 {
            let mut mask = 0u64;
            for lane in 0..LANES as u64 {
                if t % (lane % 4 + 1) == 0 {
                    mask |= 1 << lane;
                }
            }
            sim.cycle(&[(inc, mask)]).unwrap();
        }
        // Recompute expected parity per lane. A DFF shows an input one cycle
        // later, so after 8 cycles only the first 7 inputs are visible.
        for lane in 0..LANES as u64 {
            let toggles = (0..7u64).filter(|t| t % (lane % 4 + 1) == 0).count();
            assert_eq!(
                sim.value_lane(q, lane as usize),
                toggles % 2 == 1,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn enable_through_late_bound_wire_matches_scalar() {
        // Regression: an enable-gated latch whose enable cone passes through
        // a wire with a *higher* net index than the latch. An index-order
        // settle sweep would evaluate the latch against the stale enable and
        // glitch-capture; both backends must use the settled enable.
        let mut n = Netlist::new("hazard");
        let a = n.input("a");
        let en_w = n.wire();
        let l = n.latch_en(LatchPhase::High, en_w, false);
        n.bind_latch(l, a).unwrap();
        let na = n.not(a);
        n.bind_wire(en_w, na).unwrap();
        cosim(&n, 6, &patterned_inputs(4, 6, 1, 21));
        // And explicitly: with a=0 then a=1, en = !a settles to 0 in cycle
        // 2, so the latch must hold its reset value.
        let mut wide = WideSimulator::new(&n).unwrap();
        let mut scalar = Simulator::new(&n).unwrap();
        wide.cycle(&[(a, 0)]).unwrap();
        scalar.cycle(&[(a, false)]).unwrap();
        wide.cycle(&[(a, u64::MAX)]).unwrap();
        scalar.cycle(&[(a, true)]).unwrap();
        assert!(!scalar.value(l), "latch holds: enable settled low");
        assert_eq!(wide.value(l), 0, "wide agrees in every lane");
    }

    #[test]
    fn lane_mask_covers_partial_and_full_words() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(5), 0b1_1111);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(LANES), u64::MAX);
    }

    #[test]
    fn clones_run_independently_across_threads() {
        // The sharding contract: one compiled prototype, one clone per
        // worker, bit-identical results regardless of which thread ran
        // which shard.
        let mut n = Netlist::new("shard");
        let inc = n.input("inc");
        let q = n.dff(false);
        let d = n.xor(q, inc);
        n.bind_dff(q, d).unwrap();
        let proto = WideSimulator::new(&n).unwrap();
        let run = |mask: u64| {
            let mut sim = proto.clone();
            for _ in 0..5 {
                sim.cycle(&[(inc, mask)]).unwrap();
            }
            sim.value(q)
        };
        let expected: Vec<u64> = [0u64, u64::MAX, 0xAAAA_5555_AAAA_5555]
            .iter()
            .map(|&m| run(m))
            .collect();
        let got: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = [0u64, u64::MAX, 0xAAAA_5555_AAAA_5555]
                .iter()
                .map(|&m| s.spawn(move || run(m)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(expected, got);
    }

    #[test]
    fn set_input_validation() {
        let mut n = Netlist::new("v");
        let a = n.input("a");
        let x = n.not(a);
        let mut sim = WideSimulator::new(&n).unwrap();
        assert!(sim.set_input(x, 1).is_err(), "cannot drive a non-input");
        sim.set_input_lane(a, 3, true).unwrap();
        assert_eq!(sim.values[a.index()], 8);
    }

    #[test]
    fn state_roundtrip_wide() {
        let mut n = Netlist::new("state");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        let mut sim = WideSimulator::new(&n).unwrap();
        assert!(sim.load_state(&[0, 0]).is_err(), "width checked");
        sim.load_state(&[0xFFFF_0000_FFFF_0000]).unwrap();
        assert_eq!(sim.state(), vec![0xFFFF_0000_FFFF_0000]);
        // The loaded state is what the first cycle commits; the toggled
        // value q' = !q becomes visible one cycle later, per lane.
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.value(q), 0xFFFF_0000_FFFF_0000);
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.value(q), !0xFFFF_0000_FFFF_0000u64);
    }

    #[test]
    fn time_advances() {
        let mut n = Netlist::new("t");
        let _ = n.input("a");
        let mut sim = WideSimulator::new(&n).unwrap();
        sim.cycle(&[]).unwrap();
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.time(), 2);
    }
}
