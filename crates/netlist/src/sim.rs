//! Cycle-accurate two-phase simulation of netlists.
//!
//! A simulated clock cycle has the following structure:
//!
//! 1. **rising edge** — every flip-flop output takes the data value that was
//!    settled at the end of the previous cycle;
//! 2. **high phase** — combinational logic and `H`-phase latches settle;
//! 3. **falling edge** — `H` latches freeze;
//! 4. **low phase** — combinational logic and `L`-phase latches settle.
//!
//! [`Simulator::cycle`] runs all four, after which [`Simulator::value`]
//! reads the settled valuation of the completed cycle. Callers that need to
//! interleave observation and clocking (e.g. the model-checker bridge) can
//! use [`Simulator::settle`] / [`Simulator::next_state`] directly.

use crate::build::{Gate, LatchPhase, NetId, Netlist};
use crate::check;
use crate::error::NetlistError;

/// A cycle-accurate simulator over an owned copy of a netlist.
#[derive(Debug, Clone)]
pub struct Simulator {
    net: Netlist,
    values: Vec<bool>,
    /// Flip-flop data values captured at the end of the last settle, applied
    /// at the next rising edge.
    captured: Vec<bool>,
    /// Indices into `captured` per net (usize::MAX for non-FF nets).
    ff_slot: Vec<usize>,
    ffs: Vec<NetId>,
    state_nets: Vec<NetId>,
    /// Dependency-ordered evaluation sequence per clock phase, so each
    /// settle pass reads only already-settled operands (no glitch captures
    /// on enable-gated latches whose enable cone crosses net-index order).
    order_high: Vec<NetId>,
    order_low: Vec<NetId>,
    time: u64,
}

impl Simulator {
    /// Builds a simulator, checking that all state elements are bound and
    /// that the netlist has no combinational cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::UnboundState`] and
    /// [`NetlistError::CombinationalCycle`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.check_bound()?;
        check::check_combinational_cycles(netlist)?;
        let n = netlist.len();
        let mut values = vec![false; n];
        let mut ffs = Vec::new();
        let mut ff_slot = vec![usize::MAX; n];
        for id in netlist.nets() {
            match netlist.gate(id) {
                Gate::Dff { init, .. } => {
                    ff_slot[id.index()] = ffs.len();
                    ffs.push(id);
                    values[id.index()] = *init;
                }
                Gate::Latch { init, .. } => values[id.index()] = *init,
                Gate::Const(v) => values[id.index()] = *v,
                _ => {}
            }
        }
        let captured = ffs.iter().map(|f| values[f.index()]).collect();
        let state_nets = netlist.state_elements();
        let order_high = check::topo_order_in_phase(netlist, LatchPhase::High);
        let order_low = check::topo_order_in_phase(netlist, LatchPhase::Low);
        Ok(Simulator {
            net: netlist.clone(),
            values,
            captured,
            ff_slot,
            ffs,
            state_nets,
            order_high,
            order_low,
            time: 0,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Number of completed cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sets a primary input for the upcoming settle.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] if `net` is not a primary input of this
    /// netlist.
    pub fn set_input(&mut self, net: NetId, value: bool) -> Result<(), NetlistError> {
        if net.index() >= self.values.len() || !matches!(self.net.gate(net), Gate::Input) {
            return Err(NetlistError::UnknownNet(net));
        }
        self.values[net.index()] = value;
        Ok(())
    }

    /// Current value of any net (meaningful after a settle).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Values of several nets at once.
    pub fn values_of(&self, nets: &[NetId]) -> Vec<bool> {
        nets.iter().map(|&n| self.value(n)).collect()
    }

    /// Runs one full clock cycle: rising edge, then settle of both phases,
    /// then capture of the flip-flop inputs for the next edge.
    ///
    /// After `cycle` returns, [`Simulator::value`] reads the settled
    /// valuation of the cycle just completed.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::Oscillation`] from the settle and input
    /// errors from [`Simulator::set_input`].
    pub fn cycle(&mut self, inputs: &[(NetId, bool)]) -> Result<(), NetlistError> {
        // Rising edge.
        for (slot, &ff) in self.captured.iter().zip(&self.ffs) {
            self.values[ff.index()] = *slot;
        }
        for &(net, v) in inputs {
            self.set_input(net, v)?;
        }
        self.settle()?;
        // Capture for the next rising edge.
        for (i, &ff) in self.ffs.clone().iter().enumerate() {
            if let Gate::Dff { d: Some(d), .. } = self.net.gate(ff) {
                self.captured[i] = self.values[d.index()];
            }
        }
        self.time += 1;
        Ok(())
    }

    /// Settles the combinational logic and transparent latches for both
    /// clock phases (high then low) without touching flip-flops.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Oscillation`] if a level-sensitive loop fails to
    /// reach a fixpoint.
    pub fn settle(&mut self) -> Result<(), NetlistError> {
        self.settle_phase(LatchPhase::High)?;
        self.settle_phase(LatchPhase::Low)
    }

    fn settle_phase(&mut self, phase: LatchPhase) -> Result<(), NetlistError> {
        // Evaluation follows the phase's dependency order, so a structurally
        // acyclic netlist settles in one pass (the second pass verifies
        // quiescence); the budget only matters for the pathological loops
        // the constructor already rejects.
        let order = match phase {
            LatchPhase::High => &self.order_high,
            LatchPhase::Low => &self.order_low,
        };
        let budget = self.net.len() + 2;
        for _ in 0..budget {
            let mut changed = false;
            for &net in order {
                let id = net.index();
                let new = match self.net.gate(net) {
                    Gate::Input | Gate::Dff { .. } => continue,
                    Gate::Const(v) => *v,
                    Gate::Buf(a) => self.values[a.index()],
                    Gate::Wire { src } => self.values[src.expect("checked by check_bound").index()],
                    Gate::Not(a) => !self.values[a.index()],
                    Gate::And(v) => v.iter().all(|a| self.values[a.index()]),
                    Gate::Or(v) => v.iter().any(|a| self.values[a.index()]),
                    Gate::Xor(a, b) => self.values[a.index()] ^ self.values[b.index()],
                    Gate::Mux { sel, a, b } => {
                        if self.values[sel.index()] {
                            self.values[a.index()]
                        } else {
                            self.values[b.index()]
                        }
                    }
                    Gate::Latch {
                        d, en, phase: lp, ..
                    } => {
                        if *lp != phase {
                            continue; // opaque this phase
                        }
                        let enabled = en.is_none_or(|e| self.values[e.index()]);
                        if !enabled {
                            continue;
                        }
                        let d = d.expect("checked by check_bound");
                        self.values[d.index()]
                    }
                };
                if new != self.values[id] {
                    self.values[id] = new;
                    changed = true;
                }
            }
            if !changed {
                return Ok(());
            }
        }
        Err(NetlistError::Oscillation {
            phase: match phase {
                LatchPhase::High => "high",
                LatchPhase::Low => "low",
            },
        })
    }

    /// Snapshot of the current state-element outputs, in
    /// [`Netlist::state_elements`] order.
    pub fn state(&self) -> Vec<bool> {
        self.state_nets
            .iter()
            .map(|&n| self.values[n.index()])
            .collect()
    }

    /// Overwrites the state-element outputs (flip-flops and latches) and
    /// clears any pending flip-flop capture, so the next [`Simulator::cycle`]
    /// starts exactly from this state. Used by the model-checker bridge.
    ///
    /// # Errors
    ///
    /// [`NetlistError::StateWidthMismatch`] when `bits.len()` differs from
    /// the number of state elements.
    pub fn load_state(&mut self, bits: &[bool]) -> Result<(), NetlistError> {
        if bits.len() != self.state_nets.len() {
            return Err(NetlistError::StateWidthMismatch {
                expected: self.state_nets.len(),
                got: bits.len(),
            });
        }
        for (&net, &b) in self.state_nets.iter().zip(bits) {
            self.values[net.index()] = b;
            let slot = self.ff_slot[net.index()];
            if slot != usize::MAX {
                self.captured[slot] = b;
            }
        }
        Ok(())
    }

    /// The successor state implied by the current settled valuation: for
    /// flip-flops the settled value of their data input, for latches their
    /// current output (already updated during the settle).
    ///
    /// Call after [`Simulator::settle`] (or [`Simulator::cycle`]).
    pub fn next_state(&self) -> Vec<bool> {
        self.state_nets
            .iter()
            .map(|&n| match self.net.gate(n) {
                Gate::Dff { d: Some(d), .. } => self.values[d.index()],
                Gate::Dff { d: None, .. } => unreachable!("checked by check_bound"),
                _ => self.values[n.index()],
            })
            .collect()
    }

    /// Nets that make up the state vector, in state order.
    pub fn state_nets(&self) -> &[NetId] {
        &self.state_nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Netlist;

    #[test]
    fn combinational_logic_settles() {
        let mut n = Netlist::new("comb");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.and2(a, b);
        let y = n.or2(a, b);
        let z = n.xor(x, y);
        let mut sim = Simulator::new(&n).unwrap();
        sim.cycle(&[(a, true), (b, false)]).unwrap();
        assert!(!sim.value(x));
        assert!(sim.value(y));
        assert!(sim.value(z));
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut n = Netlist::new("pipe");
        let a = n.input("a");
        let q1 = n.dff_bound(a, false);
        let q2 = n.dff_bound(q1, false);
        let mut sim = Simulator::new(&n).unwrap();
        sim.cycle(&[(a, true)]).unwrap();
        assert!(!sim.value(q1), "first cycle still shows init");
        sim.cycle(&[(a, false)]).unwrap();
        assert!(sim.value(q1));
        assert!(!sim.value(q2));
        sim.cycle(&[(a, false)]).unwrap();
        assert!(!sim.value(q1));
        assert!(sim.value(q2));
    }

    #[test]
    fn toggle_ff_feedback() {
        let mut n = Netlist::new("toggle");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.cycle(&[]).unwrap();
            seen.push(sim.value(q));
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new("mux");
        let s = n.input("s");
        let a = n.constant(true);
        let b = n.constant(false);
        let z = n.mux(s, a, b);
        let mut sim = Simulator::new(&n).unwrap();
        sim.cycle(&[(s, true)]).unwrap();
        assert!(sim.value(z));
        sim.cycle(&[(s, false)]).unwrap();
        assert!(!sim.value(z));
    }

    #[test]
    fn latch_is_transparent_in_its_phase_and_holds_after() {
        let mut n = Netlist::new("latch");
        let a = n.input("a");
        let h = n.latch(LatchPhase::High, false);
        n.bind_latch(h, a).unwrap();
        let l = n.latch(LatchPhase::Low, false);
        n.bind_latch(l, h).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        // Master-slave pair behaves like a flip-flop at cycle granularity,
        // except the low latch passes the captured value in the same cycle.
        sim.cycle(&[(a, true)]).unwrap();
        assert!(sim.value(h));
        assert!(
            sim.value(l),
            "L latch follows the frozen H value in the low phase"
        );
        sim.cycle(&[(a, false)]).unwrap();
        assert!(!sim.value(h));
        assert!(!sim.value(l));
    }

    #[test]
    fn enabled_latch_holds_when_disabled() {
        let mut n = Netlist::new("gated");
        let a = n.input("a");
        let en = n.input("en");
        let h = n.latch_en(LatchPhase::High, en, false);
        n.bind_latch(h, a).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.cycle(&[(a, true), (en, true)]).unwrap();
        assert!(sim.value(h));
        sim.cycle(&[(a, false), (en, false)]).unwrap();
        assert!(sim.value(h), "disabled latch holds");
        sim.cycle(&[(a, false), (en, true)]).unwrap();
        assert!(!sim.value(h));
    }

    #[test]
    fn state_roundtrip() {
        let mut n = Netlist::new("state");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.load_state(&[true]).unwrap();
        assert_eq!(sim.state(), vec![true]);
        sim.settle().unwrap();
        assert_eq!(sim.next_state(), vec![false]);
        assert!(matches!(
            sim.load_state(&[true, false]).unwrap_err(),
            NetlistError::StateWidthMismatch {
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn oscillating_latch_loop_detected() {
        // A high-phase latch whose input is its own negation oscillates.
        let mut n = Netlist::new("osc");
        let l = n.latch(LatchPhase::High, false);
        let d = n.not(l);
        n.bind_latch(l, d).unwrap();
        // The structural check treats a single-phase latch loop as a
        // combinational cycle, so the simulator refuses to build.
        assert!(matches!(
            Simulator::new(&n).unwrap_err(),
            NetlistError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn input_validation() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let x = n.not(a);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(sim.set_input(x, true).is_err(), "cannot drive a non-input");
    }

    #[test]
    fn time_advances() {
        let mut n = Netlist::new("m");
        let _ = n.input("a");
        let mut sim = Simulator::new(&n).unwrap();
        sim.cycle(&[]).unwrap();
        sim.cycle(&[]).unwrap();
        assert_eq!(sim.time(), 2);
    }
}
