//! Gate-level netlist substrate for the elastic-circuits reproduction.
//!
//! The paper's framework emits Verilog for simulation, SMV for model
//! checking and BLIF for logic synthesis; this crate is the equivalent
//! home-grown substrate:
//!
//! * a netlist representation (AND/OR/NOT/XOR/MUX gates, constants, primary
//!   inputs, D flip-flops and transparent latches) built through
//!   [`Netlist`]'s builder methods,
//! * a cycle-accurate two-phase [`sim::Simulator`] with oscillation
//!   detection,
//! * a compiled, bit-parallel backend: [`levelize::Program`] lowers the
//!   gate graph into a flat instruction tape and [`wide::WideSimulator`]
//!   steps 64 independent trials per cycle with word-wide operations,
//! * structural sanity checks, including combinational-cycle detection,
//! * an [`area`] model that counts factored-form literals, latches and
//!   flip-flops the way SIS reports them in the paper's Table 1,
//! * [`export`] back-ends for structural **Verilog**, **BLIF** and **SMV**.
//!
//! # Example
//!
//! ```
//! use elastic_netlist::{Netlist, sim::Simulator};
//!
//! # fn main() -> Result<(), elastic_netlist::NetlistError> {
//! let mut n = Netlist::new("toggle");
//! let q = n.dff(false);           // flip-flop, input bound below
//! let d = n.not(q);
//! n.bind_dff(q, d)?;              // q' = !q
//! n.set_name(q, "q")?;
//!
//! let mut sim = Simulator::new(&n)?;
//! let mut seen = Vec::new();
//! for _ in 0..4 {
//!     sim.cycle(&[])?;
//!     seen.push(sim.value(q));
//! }
//! assert_eq!(seen, vec![false, true, false, true]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod build;
mod error;

pub mod area;
pub mod check;
pub mod export;
pub mod levelize;
pub mod opt;
pub mod sim;
pub mod vcd;
pub mod wide;

pub use build::{Gate, LatchPhase, NetId, Netlist};
pub use error::NetlistError;
