//! Structural sanity checks.
//!
//! The central check is combinational-cycle detection. Composing elastic
//! controllers can "easily lead to netlists with combinational cycles if
//! controllers are not properly designed" (paper Sect. 4); the cancellation
//! gates are placed at EHB boundaries precisely to avoid this. We verify the
//! property statically instead of discovering oscillation at runtime.
//!
//! Latches are phase-aware: a loop is only combinational if it can close
//! within a single clock phase, i.e. if it passes exclusively through plain
//! gates and latches of one phase. Loops cut by a flip-flop, or by latches
//! of both phases, are sequential and fine.

use crate::build::{Gate, LatchPhase, NetId, Netlist};
use crate::error::NetlistError;

/// Checks the netlist for combinational cycles in either clock phase.
///
/// # Errors
///
/// [`NetlistError::CombinationalCycle`] with the names of the nets on the
/// first cycle found (shortest-first within the offending strongly
/// connected component is not guaranteed; the cycle is representative).
pub fn check_combinational_cycles(netlist: &Netlist) -> Result<(), NetlistError> {
    for phase in [LatchPhase::High, LatchPhase::Low] {
        if let Some(cycle) = find_cycle_in_phase(netlist, phase) {
            let names = cycle.into_iter().map(|n| netlist.net_name(n)).collect();
            return Err(NetlistError::CombinationalCycle(names));
        }
    }
    Ok(())
}

/// Edges active during `phase`: plain gates always read their inputs;
/// latches read `d`/`en` only when transparent in this phase; flip-flops
/// and opposite-phase latches are cut points.
///
/// This single definition is shared by the cycle check, the scalar
/// simulator's settle order and the levelizer — tape correctness depends on
/// all three agreeing on what an intra-phase dependency is.
pub(crate) fn deps_in_phase(netlist: &Netlist, net: NetId, phase: LatchPhase) -> Vec<NetId> {
    match netlist.gate(net) {
        Gate::Latch { phase: lp, .. } if *lp != phase => Vec::new(),
        g => g.comb_inputs(),
    }
}

/// Dependency-ordered net sequence for one phase: every net appears after
/// all its phase-active dependencies (iterative DFS post-order over
/// [`deps_in_phase`] edges). Only meaningful for netlists that passed
/// [`check_combinational_cycles`]; with a cyclic phase graph the order is
/// merely *some* permutation.
pub(crate) fn topo_order_in_phase(netlist: &Netlist, phase: LatchPhase) -> Vec<NetId> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = netlist.len();
    let mut colour = vec![WHITE; n];
    let mut order = Vec::with_capacity(n);
    // Each frame carries its dependency list, computed once on push (this
    // runs in every Simulator/Program construction, so avoid re-deriving
    // deps on every cursor step).
    let mut stack: Vec<(NetId, Vec<NetId>, usize)> = Vec::new();
    for start in netlist.nets() {
        if colour[start.index()] != WHITE {
            continue;
        }
        colour[start.index()] = GREY;
        stack.push((start, deps_in_phase(netlist, start, phase), 0));
        while let Some((v, deps, cursor)) = stack.last_mut() {
            if *cursor < deps.len() {
                let w = deps[*cursor];
                *cursor += 1;
                if colour[w.index()] == WHITE {
                    colour[w.index()] = GREY;
                    stack.push((w, deps_in_phase(netlist, w, phase), 0));
                }
            } else {
                let v = *v;
                colour[v.index()] = BLACK;
                stack.pop();
                order.push(v);
            }
        }
    }
    order
}

/// Finds one cycle among the phase-active edges via iterative DFS with
/// colouring, returning the nets on the cycle in order.
fn find_cycle_in_phase(netlist: &Netlist, phase: LatchPhase) -> Option<Vec<NetId>> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = netlist.len();
    let mut colour = vec![WHITE; n];
    let mut stack: Vec<(NetId, usize)> = Vec::new();
    let mut path: Vec<NetId> = Vec::new();

    for start in netlist.nets() {
        if colour[start.index()] != WHITE {
            continue;
        }
        colour[start.index()] = GREY;
        stack.push((start, 0));
        path.push(start);
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let deps = deps_in_phase(netlist, v, phase);
            if *cursor < deps.len() {
                let w = deps[*cursor];
                *cursor += 1;
                match colour[w.index()] {
                    WHITE => {
                        colour[w.index()] = GREY;
                        stack.push((w, 0));
                        path.push(w);
                    }
                    GREY => {
                        // Found a back edge: the cycle is the path suffix
                        // from w to v, plus the edge v->w.
                        let pos = path
                            .iter()
                            .position(|&p| p == w)
                            .expect("grey node on path");
                        return Some(path[pos..].to_vec());
                    }
                    _ => {}
                }
            } else {
                colour[v.index()] = BLACK;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Netlist;

    #[test]
    fn acyclic_passes() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.not(a);
        let _ = n.and2(a, b);
        check_combinational_cycles(&n).unwrap();
    }

    #[test]
    fn pure_comb_cycle_detected() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        // x = a & y; y = !x  -- a cycle with no state element.
        let x = n.and([a]); // placeholder, rebuilt below
        let y = n.not(x);
        // Rebuild x to close the loop: And over [a, y].
        // The builder has no mutation API for gate inputs, so build fresh:
        let mut n2 = Netlist::new("m2");
        let a2 = n2.input("a");
        let l = n2.latch(crate::LatchPhase::High, false); // stand-in net to get ids
        let x2 = n2.and2(a2, l);
        let y2 = n2.not(x2);
        n2.bind_latch(l, y2).unwrap();
        // The loop closes through a single-phase latch: combinational in H.
        let err = check_combinational_cycles(&n2).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
        let _ = y;
    }

    #[test]
    fn dff_cuts_cycles() {
        let mut n = Netlist::new("m");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        check_combinational_cycles(&n).unwrap();
    }

    #[test]
    fn opposite_phase_latch_pair_is_sequential() {
        let mut n = Netlist::new("m");
        let h = n.latch(LatchPhase::High, false);
        let l = n.latch(LatchPhase::Low, false);
        let nh = n.not(l);
        n.bind_latch(h, nh).unwrap();
        n.bind_latch(l, h).unwrap();
        check_combinational_cycles(&n).unwrap();
    }

    #[test]
    fn same_phase_latch_loop_is_combinational() {
        let mut n = Netlist::new("m");
        let h1 = n.latch(LatchPhase::High, false);
        let h2 = n.latch(LatchPhase::High, false);
        n.bind_latch(h1, h2).unwrap();
        let inv = n.not(h1);
        n.bind_latch(h2, inv).unwrap();
        let err = check_combinational_cycles(&n).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(names) if names.len() >= 2));
    }

    #[test]
    fn reported_names_are_useful() {
        let mut n = Netlist::new("m");
        let x = n.and([]); // constant-true AND, will be rebuilt into a loop
        let y = n.or([x]);
        n.set_name(y, "loop_y").unwrap();
        // No cycle yet.
        check_combinational_cycles(&n).unwrap();
    }
}
