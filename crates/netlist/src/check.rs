//! Structural sanity checks.
//!
//! The central check is combinational-cycle detection. Composing elastic
//! controllers can "easily lead to netlists with combinational cycles if
//! controllers are not properly designed" (paper Sect. 4); the cancellation
//! gates are placed at EHB boundaries precisely to avoid this. We verify the
//! property statically instead of discovering oscillation at runtime.
//!
//! Latches are phase-aware: a loop is only combinational if it can close
//! within a single clock phase, i.e. if it passes exclusively through plain
//! gates and latches of one phase. Loops cut by a flip-flop, or by latches
//! of both phases, are sequential and fine.

use crate::build::{Gate, LatchPhase, NetId, Netlist};
use crate::error::{CycleNet, NetlistError};

/// Checks the netlist for combinational cycles in either clock phase.
///
/// # Errors
///
/// [`NetlistError::CombinationalCycle`] with the *shortest* cycle found:
/// cycle detection runs per strongly connected component of the
/// phase-dependency graph, and the report is the minimum-length loop
/// within the first offending component (BFS from each of its nets), each
/// net labelled with its gate kind. An actionable two-net report beats an
/// arbitrary DFS walk that can drag half the netlist into the message.
pub fn check_combinational_cycles(netlist: &Netlist) -> Result<(), NetlistError> {
    for phase in [LatchPhase::High, LatchPhase::Low] {
        if let Some(cycle) = shortest_cycle_in_phase(netlist, phase) {
            let nets = cycle
                .into_iter()
                .map(|n| CycleNet {
                    name: netlist.net_name(n),
                    kind: netlist.gate(n).kind_name(),
                })
                .collect();
            return Err(NetlistError::CombinationalCycle(nets));
        }
    }
    Ok(())
}

/// Edges active during `phase`: plain gates always read their inputs;
/// latches read `d`/`en` only when transparent in this phase; flip-flops
/// and opposite-phase latches are cut points.
///
/// This single definition is shared by the cycle check, the scalar
/// simulator's settle order and the levelizer — tape correctness depends on
/// all three agreeing on what an intra-phase dependency is.
pub(crate) fn deps_in_phase(netlist: &Netlist, net: NetId, phase: LatchPhase) -> Vec<NetId> {
    match netlist.gate(net) {
        Gate::Latch { phase: lp, .. } if *lp != phase => Vec::new(),
        g => g.comb_inputs(),
    }
}

/// Dependency-ordered net sequence for one phase: every net appears after
/// all its phase-active dependencies (iterative DFS post-order over
/// [`deps_in_phase`] edges). Only meaningful for netlists that passed
/// [`check_combinational_cycles`]; with a cyclic phase graph the order is
/// merely *some* permutation.
pub(crate) fn topo_order_in_phase(netlist: &Netlist, phase: LatchPhase) -> Vec<NetId> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = netlist.len();
    let mut colour = vec![WHITE; n];
    let mut order = Vec::with_capacity(n);
    // Each frame carries its dependency list, computed once on push (this
    // runs in every Simulator/Program construction, so avoid re-deriving
    // deps on every cursor step).
    let mut stack: Vec<(NetId, Vec<NetId>, usize)> = Vec::new();
    for start in netlist.nets() {
        if colour[start.index()] != WHITE {
            continue;
        }
        colour[start.index()] = GREY;
        stack.push((start, deps_in_phase(netlist, start, phase), 0));
        while let Some((v, deps, cursor)) = stack.last_mut() {
            if *cursor < deps.len() {
                let w = deps[*cursor];
                *cursor += 1;
                if colour[w.index()] == WHITE {
                    colour[w.index()] = GREY;
                    stack.push((w, deps_in_phase(netlist, w, phase), 0));
                }
            } else {
                let v = *v;
                colour[v.index()] = BLACK;
                stack.pop();
                order.push(v);
            }
        }
    }
    order
}

/// Finds the shortest cycle among the phase-active edges, if any.
///
/// Two stages: iterative Tarjan SCC over the dependency graph (linear, the
/// cost paid on every clean compile), then — only when a cyclic component
/// exists — BFS from every net of the first offending component,
/// restricted to that component, keeping the minimum-length loop. The
/// returned nets follow the dependency direction (each net reads the
/// next).
fn shortest_cycle_in_phase(netlist: &Netlist, phase: LatchPhase) -> Option<Vec<NetId>> {
    let n = netlist.len();
    let deps: Vec<Vec<NetId>> = netlist
        .nets()
        .map(|v| deps_in_phase(netlist, v, phase))
        .collect();
    let scc_of = tarjan_scc(n, &deps);

    // A component is cyclic iff it has >1 member, or its single member
    // depends on itself.
    let mut size = vec![0usize; n];
    for &c in &scc_of {
        size[c] += 1;
    }
    let cyclic = |v: usize| size[scc_of[v]] > 1 || deps[v].iter().any(|w| w.index() == v);
    let offender = (0..n).find(|&v| cyclic(v))?;
    let scc = scc_of[offender];

    // BFS within the component from each member back to itself; the
    // shortest such loop is the component's girth. Only runs on the error
    // path, so the quadratic worst case never taxes a clean compile.
    let mut best: Option<Vec<usize>> = None;
    let members: Vec<usize> = (0..n).filter(|&v| scc_of[v] == scc).collect();
    for &src in &members {
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut queue = std::collections::VecDeque::from([src]);
        let mut found = None;
        'bfs: while let Some(v) = queue.pop_front() {
            for w in &deps[v] {
                let w = w.index();
                if scc_of[w] != scc {
                    continue;
                }
                if w == src {
                    found = Some(v);
                    break 'bfs;
                }
                if parent[w].is_none() {
                    parent[w] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        if let Some(last) = found {
            let mut cycle = vec![last];
            let mut v = last;
            while v != src {
                v = parent[v].expect("bfs reached last from src");
                cycle.push(v);
            }
            cycle.reverse();
            if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best.map(|c| c.into_iter().map(NetId::from_index).collect())
}

/// Iterative Tarjan strongly-connected components over `deps` edges,
/// returning each net's component id.
fn tarjan_scc(n: usize, deps: &[Vec<NetId>]) -> Vec<usize> {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![UNSEEN; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_scc = 0usize;
    // Explicit call stack: (net, edge cursor).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if let Some(w) = deps[v].get(*cursor) {
                *cursor += 1;
                let w = w.index();
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
                call.pop();
                if let Some(&(u, _)) = call.last() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Netlist;

    #[test]
    fn acyclic_passes() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.not(a);
        let _ = n.and2(a, b);
        check_combinational_cycles(&n).unwrap();
    }

    #[test]
    fn pure_comb_cycle_detected() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        // x = a & y; y = !x  -- a cycle with no state element.
        let x = n.and([a]); // placeholder, rebuilt below
        let y = n.not(x);
        // Rebuild x to close the loop: And over [a, y].
        // The builder has no mutation API for gate inputs, so build fresh:
        let mut n2 = Netlist::new("m2");
        let a2 = n2.input("a");
        let l = n2.latch(crate::LatchPhase::High, false); // stand-in net to get ids
        let x2 = n2.and2(a2, l);
        let y2 = n2.not(x2);
        n2.bind_latch(l, y2).unwrap();
        // The loop closes through a single-phase latch: combinational in H.
        let err = check_combinational_cycles(&n2).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
        let _ = y;
    }

    #[test]
    fn dff_cuts_cycles() {
        let mut n = Netlist::new("m");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        check_combinational_cycles(&n).unwrap();
    }

    #[test]
    fn opposite_phase_latch_pair_is_sequential() {
        let mut n = Netlist::new("m");
        let h = n.latch(LatchPhase::High, false);
        let l = n.latch(LatchPhase::Low, false);
        let nh = n.not(l);
        n.bind_latch(h, nh).unwrap();
        n.bind_latch(l, h).unwrap();
        check_combinational_cycles(&n).unwrap();
    }

    #[test]
    fn same_phase_latch_loop_is_combinational() {
        let mut n = Netlist::new("m");
        let h1 = n.latch(LatchPhase::High, false);
        let h2 = n.latch(LatchPhase::High, false);
        n.bind_latch(h1, h2).unwrap();
        let inv = n.not(h1);
        n.bind_latch(h2, inv).unwrap();
        let err = check_combinational_cycles(&n).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(names) if names.len() >= 2));
    }

    #[test]
    fn shortest_cycle_reported_with_kinds() {
        // One SCC holding a 3-net loop (a -> wb -> b -> a) and a 4-net
        // loop (a -> wc -> c -> b -> a): the report must pick the short
        // one and label each net's gate kind.
        let mut n = Netlist::new("m");
        let wb = n.wire();
        let wc = n.wire();
        let a = n.and2(wb, wc);
        n.set_name(a, "a").unwrap();
        let b = n.not(a);
        let c = n.buf(b);
        n.bind_wire(wb, b).unwrap();
        n.bind_wire(wc, c).unwrap();
        let err = check_combinational_cycles(&n).unwrap_err();
        let NetlistError::CombinationalCycle(nets) = err else {
            panic!("unexpected error kind");
        };
        assert_eq!(nets.len(), 3, "{nets:?}");
        let kinds: Vec<&str> = nets.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&"and"), "{kinds:?}");
        assert!(kinds.contains(&"wire"), "{kinds:?}");
        assert!(kinds.contains(&"not"), "{kinds:?}");
        assert!(nets.iter().any(|c| c.name == "a"), "{nets:?}");
    }

    #[test]
    fn self_loop_is_shortest_cycle() {
        // A latch reading itself through nothing else: a 1-net cycle.
        let mut n = Netlist::new("m");
        let l = n.latch(LatchPhase::High, false);
        n.bind_latch(l, l).unwrap();
        let err = check_combinational_cycles(&n).unwrap_err();
        let NetlistError::CombinationalCycle(nets) = err else {
            panic!("unexpected error kind");
        };
        assert_eq!(nets.len(), 1, "{nets:?}");
        assert_eq!(nets[0].kind, "latch.H");
    }

    #[test]
    fn reported_names_are_useful() {
        let mut n = Netlist::new("m");
        let x = n.and([]); // constant-true AND, will be rebuilt into a loop
        let y = n.or([x]);
        n.set_name(y, "loop_y").unwrap();
        // No cycle yet.
        check_combinational_cycles(&n).unwrap();
    }
}
