//! BLIF export (Berkeley Logic Interchange Format, as consumed by SIS).

use std::fmt::Write as _;

use crate::build::{Gate, LatchPhase, Netlist};
use crate::error::NetlistError;
use crate::export::{check_idents, ident};

/// Renders the netlist in BLIF.
///
/// Combinational gates become `.names` blocks with on-set cubes; flip-flops
/// become `.latch <d> <q> re clk <init>` lines and transparent latches use
/// the `ah`/`al` (active-high/low) latch types, which is how SIS models
/// level-sensitive storage.
///
/// # Errors
///
/// Returns [`NetlistError::UnboundState`] if a flip-flop or latch data
/// input was never bound, and [`NetlistError::DuplicateIdent`] if two nets
/// sanitize to the same BLIF identifier.
///
/// # Example
///
/// ```
/// use elastic_netlist::{export::to_blif, Netlist};
///
/// # fn main() -> Result<(), elastic_netlist::NetlistError> {
/// let mut n = Netlist::new("andgate");
/// let a = n.input("a");
/// let b = n.input("b");
/// let y = n.and2(a, b);
/// n.set_name(y, "y").unwrap();
/// n.mark_output(y).unwrap();
/// let blif = to_blif(&n)?;
/// assert!(blif.contains(".model andgate"));
/// assert!(blif.contains(".names a b y\n11 1"));
/// # Ok(())
/// # }
/// ```
pub fn to_blif(netlist: &Netlist) -> Result<String, NetlistError> {
    check_idents(netlist)?;
    let mut s = String::new();
    let name = |id| ident(&netlist.net_name(id));
    let unbound = |id| NetlistError::UnboundState {
        net: id,
        name: netlist.net_name(id),
    };
    let _ = writeln!(s, ".model {}", ident(netlist.name()));
    let ins: Vec<_> = netlist.inputs().iter().map(|&i| name(i)).collect();
    let outs: Vec<_> = netlist.outputs().iter().map(|&o| name(o)).collect();
    let _ = writeln!(s, ".inputs {}", ins.join(" "));
    let _ = writeln!(s, ".outputs {}", outs.join(" "));

    for id in netlist.nets() {
        let lhs = name(id);
        match netlist.gate(id) {
            Gate::Input => {}
            Gate::Const(v) => {
                let _ = writeln!(s, ".names {lhs}");
                if *v {
                    let _ = writeln!(s, "1");
                }
            }
            Gate::Buf(a) => {
                let _ = writeln!(s, ".names {} {lhs}\n1 1", name(*a));
            }
            Gate::Wire { src } => {
                let src = src.ok_or_else(|| unbound(id))?;
                let _ = writeln!(s, ".names {} {lhs}\n1 1", name(src));
            }
            Gate::Not(a) => {
                let _ = writeln!(s, ".names {} {lhs}\n0 1", name(*a));
            }
            Gate::And(v) => {
                let fan: Vec<_> = v.iter().map(|&a| name(a)).collect();
                let _ = writeln!(s, ".names {} {lhs}", fan.join(" "));
                let _ = writeln!(s, "{} 1", "1".repeat(v.len()));
            }
            Gate::Or(v) => {
                let fan: Vec<_> = v.iter().map(|&a| name(a)).collect();
                let _ = writeln!(s, ".names {} {lhs}", fan.join(" "));
                for i in 0..v.len() {
                    let mut cube: Vec<u8> = vec![b'-'; v.len()];
                    cube[i] = b'1';
                    let _ = writeln!(s, "{} 1", String::from_utf8(cube).expect("ascii"));
                }
                if v.is_empty() {
                    // empty OR is constant 0: no on-set cubes.
                }
            }
            Gate::Xor(a, b) => {
                let _ = writeln!(s, ".names {} {} {lhs}", name(*a), name(*b));
                let _ = writeln!(s, "10 1\n01 1");
            }
            Gate::Mux { sel, a, b } => {
                let _ = writeln!(s, ".names {} {} {} {lhs}", name(*sel), name(*a), name(*b));
                let _ = writeln!(s, "11- 1\n0-1 1");
            }
            Gate::Dff { d, init } => {
                let d = d.ok_or_else(|| unbound(id))?;
                let _ = writeln!(s, ".latch {} {lhs} re clk {}", name(d), u8::from(*init));
            }
            Gate::Latch { d, en, phase, init } => {
                let d = d.ok_or_else(|| unbound(id))?;
                // SIS has no enabled latch; expand the enable as a hold mux
                // feeding an active-high/low latch.
                let dn = match en {
                    Some(e) => {
                        let held = format!("{lhs}_hold");
                        let _ = writeln!(s, ".names {} {} {lhs} {held}", name(*e), name(d));
                        let _ = writeln!(s, "11- 1\n0-1 1");
                        held
                    }
                    None => name(d),
                };
                let ty = match phase {
                    LatchPhase::High => "ah",
                    LatchPhase::Low => "al",
                };
                let _ = writeln!(s, ".latch {dn} {lhs} {ty} clk {}", u8::from(*init));
            }
        }
    }
    let _ = writeln!(s, ".end");
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_gate_cubes() {
        let mut n = Netlist::new("orgate");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let y = n.or([a, b, c]);
        n.set_name(y, "y").unwrap();
        n.mark_output(y).unwrap();
        let blif = to_blif(&n).unwrap();
        assert!(blif.contains("1-- 1\n-1- 1\n--1 1"), "{blif}");
    }

    #[test]
    fn ff_latch_lines() {
        let mut n = Netlist::new("seq");
        let a = n.input("a");
        let q = n.dff_bound(a, true);
        n.set_name(q, "q").unwrap();
        let l = n.latch(LatchPhase::Low, false);
        n.bind_latch(l, q).unwrap();
        n.set_name(l, "l").unwrap();
        let blif = to_blif(&n).unwrap();
        assert!(blif.contains(".latch a q re clk 1"), "{blif}");
        assert!(blif.contains(".latch q l al clk 0"), "{blif}");
    }

    #[test]
    fn enabled_latch_expands_hold_mux() {
        let mut n = Netlist::new("gated");
        let a = n.input("a");
        let en = n.input("en");
        let l = n.latch_en(LatchPhase::High, en, false);
        n.bind_latch(l, a).unwrap();
        n.set_name(l, "l").unwrap();
        let blif = to_blif(&n).unwrap();
        assert!(blif.contains(".names en a l l_hold"), "{blif}");
        assert!(blif.contains(".latch l_hold l ah clk 0"), "{blif}");
    }

    #[test]
    fn unbound_latch_is_a_typed_error() {
        let mut n = Netlist::new("dangling");
        let l = n.latch(LatchPhase::High, false);
        n.set_name(l, "l").unwrap();
        assert_eq!(
            to_blif(&n),
            Err(NetlistError::UnboundState {
                net: l,
                name: "l".into()
            })
        );
    }

    #[test]
    fn constants_and_inverters() {
        let mut n = Netlist::new("k");
        let a = n.input("a");
        let inv = n.not(a);
        let one = n.constant(true);
        let zero = n.constant(false);
        for (net, nm) in [(inv, "inv"), (one, "one"), (zero, "zero")] {
            n.set_name(net, nm).unwrap();
        }
        let blif = to_blif(&n).unwrap();
        assert!(blif.contains(".names a inv\n0 1"));
        assert!(blif.contains(".names one\n1"));
        assert!(blif.contains(".names zero\n.end") || blif.contains(".names zero\n.names"));
    }
}
