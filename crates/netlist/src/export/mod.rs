//! Textual exporters.
//!
//! The paper's framework "can generate Verilog models for simulation, SMV
//! models for verification and BLIF models for logic synthesis with SIS"
//! (Sect. 6.1). These modules emit the same three formats from our netlists
//! so the artefacts can be fed to external tools when available; inside this
//! project they are exercised as golden-text tests.

mod blif;
mod smv;
mod verilog;

pub use blif::to_blif;
pub use smv::to_smv;
pub use verilog::to_verilog;

/// Sanitizes a net name into an identifier acceptable to all three
/// target languages (alphanumerics and underscores, non-digit start).
pub(crate) fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_sanitizes() {
        assert_eq!(ident("V+/S+"), "V__S_");
        assert_eq!(ident("3x"), "n3x");
        assert_eq!(ident("ok_name"), "ok_name");
        assert_eq!(ident(""), "n");
    }
}
