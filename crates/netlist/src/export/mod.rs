//! Textual exporters.
//!
//! The paper's framework "can generate Verilog models for simulation, SMV
//! models for verification and BLIF models for logic synthesis with SIS"
//! (Sect. 6.1). These modules emit the same three formats from our netlists
//! so the artefacts can be fed to external tools when available; inside this
//! project they are exercised as golden-text tests.

mod blif;
mod smv;
mod verilog;

use std::collections::HashMap;
use std::path::Path;

use crate::build::Netlist;
use crate::error::NetlistError;

pub use blif::to_blif;
pub use smv::to_smv;
pub use verilog::to_verilog;

/// Sanitizes a net name into an identifier acceptable to all three
/// target languages (alphanumerics and underscores, non-digit start).
pub(crate) fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

/// Verifies that every net sanitizes to a *distinct* identifier.
///
/// Sanitization is lossy (`ident("V+") == ident("V-") == "V_"`), so two
/// differently named nets can alias in the emitted text, which would merge
/// them silently in any downstream tool. Every exporter runs this precheck
/// and returns [`NetlistError::DuplicateIdent`] instead of emitting the
/// aliased netlist.
pub(crate) fn check_idents(netlist: &Netlist) -> Result<(), NetlistError> {
    let mut seen: HashMap<String, crate::build::NetId> = HashMap::new();
    for id in netlist.nets() {
        let name = ident(&netlist.net_name(id));
        if let Some(&first) = seen.get(&name) {
            return Err(NetlistError::DuplicateIdent {
                ident: name,
                first,
                second: id,
            });
        }
        seen.insert(name, id);
    }
    Ok(())
}

/// Renders and writes the Verilog model to `path`.
///
/// # Errors
///
/// Any [`to_verilog`] error, or [`NetlistError::Io`] if the write fails.
pub fn write_verilog(netlist: &Netlist, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    write_text(path, &to_verilog(netlist)?)
}

/// Renders and writes the BLIF model to `path`.
///
/// # Errors
///
/// Any [`to_blif`] error, or [`NetlistError::Io`] if the write fails.
pub fn write_blif(netlist: &Netlist, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    write_text(path, &to_blif(netlist)?)
}

/// Renders and writes the SMV model to `path`.
///
/// # Errors
///
/// Any [`to_smv`] error, or [`NetlistError::Io`] if the write fails.
pub fn write_smv(netlist: &Netlist, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    write_text(path, &to_smv(netlist)?)
}

/// Runs the export round-trip consistency check used by benchmarks and CI.
///
/// All three renderers are invoked twice and must produce byte-identical
/// text (they are pure functions of the netlist; any divergence means
/// nondeterministic iteration order leaked into an exporter). The BLIF
/// output is additionally cross-checked structurally: it must contain
/// exactly one `.latch` line per state element of the netlist.
///
/// # Errors
///
/// Any renderer error, or [`NetlistError::RoundTrip`] describing the first
/// divergence found.
pub fn round_trip_check(netlist: &Netlist) -> Result<(), NetlistError> {
    type Render = fn(&Netlist) -> Result<String, NetlistError>;
    let renders: [(&str, Render); 3] =
        [("verilog", to_verilog), ("blif", to_blif), ("smv", to_smv)];
    let mut blif = String::new();
    for (fmt, render) in renders {
        let first = render(netlist)?;
        let second = render(netlist)?;
        if first != second {
            return Err(NetlistError::RoundTrip(format!(
                "{fmt} renderer is not deterministic for module {:?}",
                netlist.name()
            )));
        }
        if fmt == "blif" {
            blif = first;
        }
    }
    let latches = blif
        .lines()
        .filter(|l| l.trim_start().starts_with(".latch "))
        .count();
    let state = netlist.state_elements().len();
    if latches != state {
        return Err(NetlistError::RoundTrip(format!(
            "module {:?}: blif emits {latches} .latch lines but the netlist has {state} state elements",
            netlist.name()
        )));
    }
    Ok(())
}

pub(crate) fn write_text(path: impl AsRef<Path>, text: &str) -> Result<(), NetlistError> {
    std::fs::write(path.as_ref(), text)
        .map_err(|e| NetlistError::Io(format!("{}: {e}", path.as_ref().display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_sanitizes() {
        assert_eq!(ident("V+/S+"), "V__S_");
        assert_eq!(ident("3x"), "n3x");
        assert_eq!(ident("ok_name"), "ok_name");
        assert_eq!(ident(""), "n");
    }

    #[test]
    fn check_idents_flags_sanitization_collisions() {
        let mut n = Netlist::new("m");
        let a = n.input("V+");
        let b = n.input("V-");
        let err = check_idents(&n).unwrap_err();
        assert_eq!(
            err,
            NetlistError::DuplicateIdent {
                ident: "V_".into(),
                first: a,
                second: b,
            }
        );
    }

    #[test]
    fn check_idents_flags_fallback_name_capture() {
        // A user-assigned name that matches another net's synthesized
        // `w<i>` fallback is also a collision.
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let unnamed = n.not(a); // falls back to w1
        n.set_name(a, "w1").unwrap();
        let err = check_idents(&n).unwrap_err();
        assert_eq!(
            err,
            NetlistError::DuplicateIdent {
                ident: "w1".into(),
                first: a,
                second: unnamed,
            }
        );
    }

    #[test]
    fn check_idents_accepts_distinct_names() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let y = n.not(a);
        n.set_name(y, "y").unwrap();
        assert!(check_idents(&n).is_ok());
    }

    #[test]
    fn round_trip_check_accepts_stateful_netlist() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let q = n.dff_bound(a, false);
        n.set_name(q, "q").unwrap();
        let y = n.not(q);
        n.set_name(y, "y").unwrap();
        round_trip_check(&n).unwrap();
    }

    #[test]
    fn round_trip_check_counts_latch_lines() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let q = n.dff_bound(a, false);
        n.set_name(q, "q").unwrap();
        let blif = to_blif(&n).unwrap();
        assert_eq!(
            blif.lines().filter(|l| l.starts_with(".latch ")).count(),
            n.state_elements().len()
        );
        round_trip_check(&n).unwrap();
    }

    #[test]
    fn write_helpers_report_io_failures() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let y = n.not(a);
        n.set_name(y, "y").unwrap();
        let err = write_verilog(&n, "/nonexistent-dir/out.v").unwrap_err();
        assert!(matches!(err, NetlistError::Io(_)), "{err}");
    }
}
