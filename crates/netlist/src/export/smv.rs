//! SMV export for symbolic model checkers (NuSMV dialect).

use std::fmt::Write as _;

use crate::build::{Gate, Netlist};
use crate::error::NetlistError;
use crate::export::{check_idents, ident};

/// Renders the netlist as an SMV module.
///
/// Primary inputs become unconstrained `VAR` booleans (the nondeterministic
/// environment), flip-flops become `VAR`s with `init`/`next` assignments and
/// combinational nets become `DEFINE`s.
///
/// # Errors
///
/// Returns [`NetlistError::BadBind`] if the netlist contains transparent
/// latches: SMV's synchronous semantics has no level-sensitive storage, so
/// latch-based designs must be converted to their flip-flop equivalents
/// before export (our controllers are flip-flop based already). Also
/// returns [`NetlistError::UnboundState`] for a flip-flop or wire whose
/// data input was never bound, and [`NetlistError::DuplicateIdent`] if two
/// nets sanitize to the same SMV identifier.
///
/// # Example
///
/// ```
/// use elastic_netlist::{export::to_smv, Netlist};
///
/// # fn main() -> Result<(), elastic_netlist::NetlistError> {
/// let mut n = Netlist::new("toggle");
/// let q = n.dff(false);
/// let d = n.not(q);
/// n.bind_dff(q, d)?;
/// n.set_name(q, "q")?;
/// let smv = to_smv(&n)?;
/// assert!(smv.contains("init(q) := FALSE;"));
/// assert!(smv.contains("next(q) :="));
/// # Ok(())
/// # }
/// ```
pub fn to_smv(netlist: &Netlist) -> Result<String, NetlistError> {
    check_idents(netlist)?;
    let name = |id| ident(&netlist.net_name(id));
    let unbound = |id| NetlistError::UnboundState {
        net: id,
        name: netlist.net_name(id),
    };
    for id in netlist.nets() {
        if let Gate::Latch { .. } = netlist.gate(id) {
            return Err(NetlistError::BadBind(id));
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "MODULE main");
    let _ = writeln!(s, "VAR");
    for &i in netlist.inputs() {
        let _ = writeln!(s, "  {} : boolean;", name(i));
    }
    for id in netlist.nets() {
        if matches!(netlist.gate(id), Gate::Dff { .. }) {
            let _ = writeln!(s, "  {} : boolean;", name(id));
        }
    }
    let mut defines = String::new();
    let mut assigns = String::new();
    for id in netlist.nets() {
        let lhs = name(id);
        let expr = match netlist.gate(id) {
            Gate::Input => continue,
            Gate::Const(v) => if *v { "TRUE" } else { "FALSE" }.to_string(),
            Gate::Buf(a) => name(*a),
            Gate::Wire { src } => name(src.ok_or_else(|| unbound(id))?),
            Gate::Not(a) => format!("!{}", name(*a)),
            Gate::And(v) if v.is_empty() => "TRUE".to_string(),
            Gate::And(v) => v.iter().map(|&a| name(a)).collect::<Vec<_>>().join(" & "),
            Gate::Or(v) if v.is_empty() => "FALSE".to_string(),
            Gate::Or(v) => v.iter().map(|&a| name(a)).collect::<Vec<_>>().join(" | "),
            Gate::Xor(a, b) => format!("{} xor {}", name(*a), name(*b)),
            Gate::Mux { sel, a, b } => {
                format!("({} ? {} : {})", name(*sel), name(*a), name(*b))
            }
            Gate::Dff { d, init } => {
                let d = d.ok_or_else(|| unbound(id))?;
                let _ = writeln!(
                    assigns,
                    "  init({lhs}) := {};",
                    if *init { "TRUE" } else { "FALSE" }
                );
                let _ = writeln!(assigns, "  next({lhs}) := {};", name(d));
                continue;
            }
            Gate::Latch { .. } => unreachable!("rejected above"),
        };
        let _ = writeln!(defines, "  {lhs} := {expr};");
    }
    if !defines.is_empty() {
        let _ = writeln!(s, "DEFINE");
        s.push_str(&defines);
    }
    if !assigns.is_empty() {
        let _ = writeln!(s, "ASSIGN");
        s.push_str(&assigns);
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::LatchPhase;

    #[test]
    fn inputs_are_free_variables() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let y = n.not(a);
        n.set_name(y, "y").unwrap();
        let smv = to_smv(&n).unwrap();
        assert!(smv.contains("VAR\n  a : boolean;"), "{smv}");
        assert!(smv.contains("  y := !a;"));
    }

    #[test]
    fn latches_rejected() {
        let mut n = Netlist::new("m");
        let l = n.latch(LatchPhase::High, false);
        let d = n.constant(false);
        n.bind_latch(l, d).unwrap();
        assert!(to_smv(&n).is_err());
    }

    #[test]
    fn gate_operators() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let m = n.mux(a, b, x);
        let c = n.and2(a, b);
        for (net, nm) in [(x, "x"), (m, "m"), (c, "c")] {
            n.set_name(net, nm).unwrap();
        }
        let smv = to_smv(&n).unwrap();
        assert!(smv.contains("x := a xor b;"));
        assert!(smv.contains("m := (a ? b : x);"));
        assert!(smv.contains("c := a & b;"));
    }
}
