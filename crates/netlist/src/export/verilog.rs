//! Structural Verilog-2001 export.

use std::fmt::Write as _;

use crate::build::{Gate, LatchPhase, Netlist};
use crate::error::NetlistError;
use crate::export::{check_idents, ident};

/// Renders the netlist as a synthesizable structural Verilog module.
///
/// Flip-flops become `always @(posedge clk)` blocks, latches become
/// level-sensitive `always @*` blocks on `clk`/`!clk` (and the enable when
/// present). Nets keep their display names when set.
///
/// # Errors
///
/// Returns [`NetlistError::UnboundState`] if a flip-flop or latch data
/// input was never bound, and [`NetlistError::DuplicateIdent`] if two nets
/// sanitize to the same Verilog identifier.
///
/// # Example
///
/// ```
/// use elastic_netlist::{export::to_verilog, Netlist};
///
/// # fn main() -> Result<(), elastic_netlist::NetlistError> {
/// let mut n = Netlist::new("inv");
/// let a = n.input("a");
/// let y = n.not(a);
/// n.set_name(y, "y").unwrap();
/// n.mark_output(y).unwrap();
/// let v = to_verilog(&n)?;
/// assert!(v.contains("module inv"));
/// assert!(v.contains("assign y = ~a;"));
/// # Ok(())
/// # }
/// ```
pub fn to_verilog(netlist: &Netlist) -> Result<String, NetlistError> {
    check_idents(netlist)?;
    let mut s = String::new();
    let name = |id| ident(&netlist.net_name(id));
    let unbound = |id| NetlistError::UnboundState {
        net: id,
        name: netlist.net_name(id),
    };
    let has_state = netlist.nets().any(|n| netlist.gate(n).is_stateful());

    let mut ports: Vec<String> = Vec::new();
    if has_state {
        ports.push("clk".into());
        ports.push("rst".into());
    }
    ports.extend(netlist.inputs().iter().map(|&i| name(i)));
    ports.extend(netlist.outputs().iter().map(|&o| name(o)));
    let _ = writeln!(
        s,
        "module {} ({});",
        ident(netlist.name()),
        ports.join(", ")
    );
    if has_state {
        let _ = writeln!(s, "  input clk, rst;");
    }
    for &i in netlist.inputs() {
        let _ = writeln!(s, "  input {};", name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(s, "  output {};", name(o));
    }
    for id in netlist.nets() {
        match netlist.gate(id) {
            Gate::Input => {}
            Gate::Dff { .. } | Gate::Latch { .. } => {
                let _ = writeln!(s, "  reg {};", name(id));
            }
            _ => {
                if !netlist.outputs().contains(&id) {
                    let _ = writeln!(s, "  wire {};", name(id));
                }
            }
        }
    }
    for id in netlist.nets() {
        let lhs = name(id);
        match netlist.gate(id) {
            Gate::Input => {}
            Gate::Const(v) => {
                let _ = writeln!(s, "  assign {lhs} = 1'b{};", u8::from(*v));
            }
            Gate::Buf(a) => {
                let _ = writeln!(s, "  assign {lhs} = {};", name(*a));
            }
            Gate::Wire { src } => {
                let src = src.ok_or_else(|| unbound(id))?;
                let _ = writeln!(s, "  assign {lhs} = {};", name(src));
            }
            Gate::Not(a) => {
                let _ = writeln!(s, "  assign {lhs} = ~{};", name(*a));
            }
            Gate::And(v) if v.is_empty() => {
                let _ = writeln!(s, "  assign {lhs} = 1'b1;");
            }
            Gate::And(v) => {
                let expr: Vec<_> = v.iter().map(|&a| name(a)).collect();
                let _ = writeln!(s, "  assign {lhs} = {};", expr.join(" & "));
            }
            Gate::Or(v) if v.is_empty() => {
                let _ = writeln!(s, "  assign {lhs} = 1'b0;");
            }
            Gate::Or(v) => {
                let expr: Vec<_> = v.iter().map(|&a| name(a)).collect();
                let _ = writeln!(s, "  assign {lhs} = {};", expr.join(" | "));
            }
            Gate::Xor(a, b) => {
                let _ = writeln!(s, "  assign {lhs} = {} ^ {};", name(*a), name(*b));
            }
            Gate::Mux { sel, a, b } => {
                let _ = writeln!(
                    s,
                    "  assign {lhs} = {} ? {} : {};",
                    name(*sel),
                    name(*a),
                    name(*b)
                );
            }
            Gate::Dff { d, init } => {
                let d = d.ok_or_else(|| unbound(id))?;
                let _ = writeln!(s, "  always @(posedge clk)");
                let _ = writeln!(
                    s,
                    "    if (rst) {lhs} <= 1'b{}; else {lhs} <= {};",
                    u8::from(*init),
                    name(d)
                );
            }
            Gate::Latch { d, en, phase, .. } => {
                let d = d.ok_or_else(|| unbound(id))?;
                let level = match phase {
                    LatchPhase::High => "clk".to_string(),
                    LatchPhase::Low => "~clk".to_string(),
                };
                let cond = match en {
                    Some(e) => format!("{} & {}", level, name(*e)),
                    None => level,
                };
                let _ = writeln!(s, "  always @*");
                let _ = writeln!(s, "    if ({cond}) {lhs} = {};", name(d));
            }
        }
    }
    let _ = writeln!(s, "endmodule");
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_module_has_clock_and_reset() {
        let mut n = Netlist::new("ff");
        let a = n.input("a");
        let q = n.dff_bound(a, true);
        n.set_name(q, "q").unwrap();
        n.mark_output(q).unwrap();
        let v = to_verilog(&n).unwrap();
        assert!(v.contains("input clk, rst;"), "{v}");
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("q <= 1'b1; else q <= a;"));
    }

    #[test]
    fn latch_export_uses_level_sensitivity() {
        let mut n = Netlist::new("lat");
        let a = n.input("a");
        let en = n.input("en");
        let l = n.latch_en(LatchPhase::Low, en, false);
        n.bind_latch(l, a).unwrap();
        n.set_name(l, "l").unwrap();
        let v = to_verilog(&n).unwrap();
        assert!(v.contains("if (~clk & en) l = a;"), "{v}");
    }

    #[test]
    fn combinational_module_omits_clock() {
        let mut n = Netlist::new("comb");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.or2(a, b);
        n.set_name(y, "y").unwrap();
        n.mark_output(y).unwrap();
        let v = to_verilog(&n).unwrap();
        assert!(!v.contains("clk"));
        assert!(v.contains("assign y = a | b;"));
    }

    #[test]
    fn gate_varieties_render() {
        let mut n = Netlist::new("kinds");
        let a = n.input("a");
        let b = n.input("b");
        let c0 = n.constant(false);
        let x = n.xor(a, b);
        let m = n.mux(a, b, c0);
        let t = n.and([]);
        let f = n.or([]);
        for (net, nm) in [(x, "x"), (m, "m"), (t, "t"), (f, "f"), (c0, "c0")] {
            n.set_name(net, nm).unwrap();
        }
        let v = to_verilog(&n).unwrap();
        assert!(v.contains("assign x = a ^ b;"));
        assert!(v.contains("assign m = a ? b : c0;"));
        assert!(v.contains("assign t = 1'b1;"));
        assert!(v.contains("assign f = 1'b0;"));
        assert!(v.contains("assign c0 = 1'b0;"));
    }

    #[test]
    fn unbound_dff_is_a_typed_error() {
        let mut n = Netlist::new("dangling");
        let q = n.dff(false);
        n.set_name(q, "q").unwrap();
        assert_eq!(
            to_verilog(&n),
            Err(NetlistError::UnboundState {
                net: q,
                name: "q".into()
            })
        );
    }

    #[test]
    fn ident_collision_is_a_typed_error() {
        let mut n = Netlist::new("m");
        n.input("V+");
        n.input("V-");
        assert!(matches!(
            to_verilog(&n),
            Err(NetlistError::DuplicateIdent { .. })
        ));
    }
}
