//! Area model: factored-form literal counting.
//!
//! The paper's Table 1 reports controller area as literals in factored form
//! (from SIS), transparent latches and flip-flops. We count the same three
//! quantities structurally:
//!
//! * each input pin of an AND/OR gate contributes one literal (inverters are
//!   absorbed into complemented literals, as in factored form),
//! * XOR counts as 4 literals (`a·b' + a'·b`), MUX as 4 (`s·a + s'·b`),
//! * buffers, constants, inverters and state elements contribute none,
//! * latches and flip-flops are counted separately.
//!
//! Absolute values differ from SIS (which restructures logic); the *ranking*
//! between controller configurations — all that Table 1 uses area for — is
//! preserved because it is driven by which controller pieces exist at all.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use crate::build::{Gate, Netlist};

/// Area summary of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaReport {
    /// Factored-form literals of the combinational logic.
    pub literals: usize,
    /// Transparent latches.
    pub latches: usize,
    /// Flip-flops.
    pub flipflops: usize,
    /// Total gate count (combinational gates with at least one input).
    pub gates: usize,
}

impl AreaReport {
    /// Computes the report for a netlist.
    ///
    /// # Example
    ///
    /// ```
    /// use elastic_netlist::{area::AreaReport, Netlist};
    ///
    /// let mut n = Netlist::new("m");
    /// let a = n.input("a");
    /// let b = n.input("b");
    /// let x = n.and2(a, b);
    /// let q = n.dff_bound(x, false);
    /// # let _ = q;
    /// let area = AreaReport::of(&n);
    /// assert_eq!(area.literals, 2);
    /// assert_eq!(area.flipflops, 1);
    /// ```
    pub fn of(netlist: &Netlist) -> Self {
        let mut r = AreaReport::default();
        for id in netlist.nets() {
            match netlist.gate(id) {
                Gate::Input | Gate::Const(_) | Gate::Buf(_) | Gate::Wire { .. } => {}
                Gate::Not(_) => {
                    // Inverters fold into complemented literals downstream.
                    r.gates += 1;
                }
                Gate::And(v) | Gate::Or(v) => {
                    r.literals += v.len();
                    r.gates += 1;
                }
                Gate::Xor(_, _) | Gate::Mux { .. } => {
                    r.literals += 4;
                    r.gates += 1;
                }
                Gate::Dff { .. } => r.flipflops += 1,
                Gate::Latch { .. } => r.latches += 1,
            }
        }
        r
    }
}

impl Add for AreaReport {
    type Output = AreaReport;

    fn add(self, rhs: AreaReport) -> AreaReport {
        AreaReport {
            literals: self.literals + rhs.literals,
            latches: self.latches + rhs.latches,
            flipflops: self.flipflops + rhs.flipflops,
            gates: self.gates + rhs.gates,
        }
    }
}

impl Sum for AreaReport {
    fn sum<I: Iterator<Item = AreaReport>>(iter: I) -> Self {
        iter.fold(AreaReport::default(), Add::add)
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lit, {} lat, {} ff ({} gates)",
            self.literals, self.latches, self.flipflops, self.gates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::LatchPhase;

    #[test]
    fn counts_each_kind() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let s = n.input("s");
        let x = n.and([a, b, s]); // 3 literals
        let o = n.or2(a, x); // 2 literals
        let z = n.xor(a, b); // 4
        let m = n.mux(s, o, z); // 4
        let q = n.dff_bound(m, false);
        let l = n.latch(LatchPhase::High, false);
        n.bind_latch(l, q).unwrap();
        let inv = n.not(l); // 0 literals, 1 gate
        let _ = inv;
        let r = AreaReport::of(&n);
        assert_eq!(r.literals, 13);
        assert_eq!(r.flipflops, 1);
        assert_eq!(r.latches, 1);
        assert_eq!(r.gates, 5);
    }

    #[test]
    fn addition_and_sum() {
        let a = AreaReport {
            literals: 1,
            latches: 2,
            flipflops: 3,
            gates: 4,
        };
        let b = AreaReport {
            literals: 10,
            latches: 20,
            flipflops: 30,
            gates: 40,
        };
        let s: AreaReport = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
        assert_eq!(s.literals, 11);
    }

    #[test]
    fn display_matches_table1_style() {
        let r = AreaReport {
            literals: 253,
            latches: 56,
            flipflops: 9,
            gates: 0,
        };
        assert!(r.to_string().starts_with("253 lit, 56 lat, 9 ff"));
    }
}
