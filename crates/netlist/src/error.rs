use std::fmt;

use crate::build::NetId;

/// One net on a reported combinational cycle: its display name plus the
/// gate kind ([`crate::build::Gate::kind_name`]), so the report tells the
/// reader *what* is looping, not just which nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleNet {
    /// Display name of the net (or its `w<i>` fallback).
    pub name: String,
    /// Gate-kind label, e.g. `"and"`, `"latch.H"`.
    pub kind: &'static str,
}

impl fmt::Display for CycleNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name, self.kind)
    }
}

/// Errors produced while building, checking or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net id referenced an index outside the netlist.
    UnknownNet(NetId),
    /// A flip-flop or latch data input was never bound.
    UnboundState {
        /// The state element's output net.
        net: NetId,
        /// Its display name, if one was assigned.
        name: String,
    },
    /// `bind_dff`/`bind_latch` was applied to a net that is not of that kind,
    /// or applied twice.
    BadBind(NetId),
    /// The netlist contains a combinational cycle (not cut by any flip-flop
    /// or by latches of both phases). The *shortest* offending cycle is
    /// reported (BFS within its strongly connected component), each net
    /// with its name and gate kind.
    CombinationalCycle(Vec<CycleNet>),
    /// Simulation failed to reach a fixpoint within the iteration budget —
    /// the symptom of an oscillating (level-sensitive) loop.
    Oscillation {
        /// The clock phase during which the oscillation was observed.
        phase: &'static str,
    },
    /// A state vector of the wrong width was passed to `load_state`.
    StateWidthMismatch {
        /// Number of state elements in the netlist.
        expected: usize,
        /// Length of the supplied vector.
        got: usize,
    },
    /// A duplicate net name was assigned.
    DuplicateName(String),
    /// A name lookup failed.
    UnknownName(String),
    /// A per-lane accessor was given a lane index outside the simulator's
    /// lane word.
    LaneOutOfRange {
        /// The requested lane.
        lane: usize,
        /// Number of lanes the simulator holds.
        lanes: usize,
    },
    /// Two distinct nets sanitize to the same exported identifier, so the
    /// emitted Verilog/BLIF/SMV would silently merge them.
    DuplicateIdent {
        /// The colliding sanitized identifier.
        ident: String,
        /// The first net that claimed the identifier.
        first: NetId,
        /// The other net that sanitizes to the same identifier.
        second: NetId,
    },
    /// An I/O failure while writing an exported artefact to disk. Holds the
    /// rendered `std::io::Error` message (kept as a string so the error type
    /// stays `Clone`/`Eq`).
    Io(String),
    /// An export round-trip consistency check failed: a renderer produced
    /// different text on a second pass, or an emitted artefact disagrees
    /// structurally with the netlist (see `export::round_trip_check`).
    RoundTrip(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNet(n) => write!(f, "unknown net id {}", n.index()),
            NetlistError::UnboundState { net, name } => {
                write!(
                    f,
                    "state element {} ({name}) has no bound data input",
                    net.index()
                )
            }
            NetlistError::BadBind(n) => {
                write!(
                    f,
                    "net {} cannot be (re)bound: not an unbound state element",
                    n.index()
                )
            }
            NetlistError::CombinationalCycle(nets) => {
                let rendered: Vec<String> = nets.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "combinational cycle ({} nets, shortest in its scc): {}",
                    nets.len(),
                    rendered.join(" -> ")
                )
            }
            NetlistError::Oscillation { phase } => {
                write!(f, "simulation oscillated during the {phase} phase")
            }
            NetlistError::StateWidthMismatch { expected, got } => {
                write!(
                    f,
                    "state vector has {got} bits, netlist has {expected} state elements"
                )
            }
            NetlistError::DuplicateName(n) => write!(f, "duplicate net name {n:?}"),
            NetlistError::UnknownName(n) => write!(f, "no net named {n:?}"),
            NetlistError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range for a {lanes}-lane simulator")
            }
            NetlistError::DuplicateIdent {
                ident,
                first,
                second,
            } => {
                write!(
                    f,
                    "nets {} and {} both export as identifier {ident:?}",
                    first.index(),
                    second.index()
                )
            }
            NetlistError::Io(msg) => write!(f, "export i/o failure: {msg}"),
            NetlistError::RoundTrip(msg) => write!(f, "export round-trip check failed: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::CombinationalCycle(vec![
            CycleNet {
                name: "a".into(),
                kind: "and",
            },
            CycleNet {
                name: "b".into(),
                kind: "not",
            },
        ]);
        assert!(e.to_string().contains("a[and] -> b[not]"), "{e}");
    }

    #[test]
    fn send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<NetlistError>();
    }
}
