//! Logic simplification: constant propagation, alias collapsing and dead
//! code elimination.
//!
//! This is the "simple logic synthesis techniques" step of the paper's flow
//! (Sect. 6): channels without a negative part have `V⁻ = S⁻ = 0`, and the
//! associated controller logic must disappear so that lazy configurations
//! come out smaller than counterflow ones (Table 1's area column).
//!
//! Three passes run to a joint fixpoint:
//!
//! 1. **constant propagation** — combinational gates with constant inputs
//!    fold; a flip-flop whose data input is a constant equal to its initial
//!    value is itself a constant (sequential constants);
//! 2. **alias collapsing** — buffers, bound wires and single-input AND/OR
//!    forward their source;
//! 3. **dead code elimination** — only gates transitively reachable from
//!    the marked outputs (plus all primary inputs, to keep the interface)
//!    survive.

use std::collections::HashMap;

use crate::build::{Gate, NetId, Netlist};
use crate::error::NetlistError;

/// Simplifies `netlist`, returning the optimized copy and the mapping from
/// old net ids to new ones (`None` for dropped nets).
///
/// Net names and output markings survive on the nets that remain; a net
/// folded to a constant keeps its name on the replacement constant, so
/// simulation probes and model-checking atoms stay valid.
///
/// # Errors
///
/// [`NetlistError::UnboundState`] if a flip-flop, latch or wire was never
/// bound.
///
/// # Example
///
/// ```
/// use elastic_netlist::{opt::optimize, area::AreaReport, Netlist};
///
/// # fn main() -> Result<(), elastic_netlist::NetlistError> {
/// let mut n = Netlist::new("m");
/// let a = n.input("a");
/// let zero = n.constant(false);
/// let dead = n.and2(a, zero);     // folds to 0 and is unused
/// let keep = n.or2(a, zero);      // folds to just `a`
/// n.set_name(keep, "keep")?;
/// n.mark_output(keep)?;
/// # let _ = dead;
/// let (opt, _map) = optimize(&n)?;
/// assert_eq!(AreaReport::of(&opt).literals, 0);
/// assert!(opt.find("keep").is_ok());
/// # Ok(())
/// # }
/// ```
pub fn optimize(netlist: &Netlist) -> Result<(Netlist, Vec<Option<NetId>>), NetlistError> {
    netlist.check_bound()?;
    let n = netlist.len();

    // --- pass 1: constant analysis (combinational + sequential) ---
    //
    // Sequential constants are found inductively (a greatest fixpoint):
    // assume every state element is stuck at its initial value, derive the
    // combinational constants under that assumption, then demote any state
    // element whose next-state function does not evaluate back to its
    // initial value. Repeat until no demotion happens. This catches
    // self-holding registers like `nv' = nv ∧ x` with `init = 0`, which a
    // purely forward analysis misses.
    let mut assumed: Vec<Option<bool>> = netlist
        .nets()
        .map(|id| match netlist.gate(id) {
            Gate::Dff { init, .. } | Gate::Latch { init, .. } => Some(*init),
            _ => None,
        })
        .collect();
    let forward = |assumed: &[Option<bool>]| -> Vec<Option<bool>> {
        let mut konst: Vec<Option<bool>> = netlist
            .nets()
            .map(|id| match netlist.gate(id) {
                Gate::Const(v) => Some(*v),
                Gate::Dff { .. } | Gate::Latch { .. } => assumed[id.index()],
                _ => None,
            })
            .collect();
        loop {
            let mut changed = false;
            for id in netlist.nets() {
                if konst[id.index()].is_some() {
                    continue;
                }
                let get = |x: NetId| konst[x.index()];
                let new = match netlist.gate(id) {
                    Gate::Input | Gate::Const(_) | Gate::Dff { .. } | Gate::Latch { .. } => None,
                    Gate::Buf(a) => get(*a),
                    Gate::Wire { src } => get(src.expect("checked")),
                    Gate::Not(a) => get(*a).map(|v| !v),
                    Gate::And(v) => {
                        if v.iter().any(|&a| get(a) == Some(false)) {
                            Some(false)
                        } else if v.iter().all(|&a| get(a) == Some(true)) {
                            Some(true)
                        } else {
                            None
                        }
                    }
                    Gate::Or(v) => {
                        if v.iter().any(|&a| get(a) == Some(true)) {
                            Some(true)
                        } else if v.iter().all(|&a| get(a) == Some(false)) {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    Gate::Xor(a, b) => match (get(*a), get(*b)) {
                        (Some(x), Some(y)) => Some(x ^ y),
                        _ => None,
                    },
                    Gate::Mux { sel, a, b } => match get(*sel) {
                        Some(true) => get(*a),
                        Some(false) => get(*b),
                        None => match (get(*a), get(*b)) {
                            (Some(x), Some(y)) if x == y => Some(x),
                            _ => None,
                        },
                    },
                };
                if new.is_some() {
                    konst[id.index()] = new;
                    changed = true;
                }
            }
            if !changed {
                return konst;
            }
        }
    };
    let konst = loop {
        let konst = forward(&assumed);
        let mut demoted = false;
        for id in netlist.nets() {
            if assumed[id.index()].is_none() {
                continue;
            }
            let (d, init) = match netlist.gate(id) {
                Gate::Dff { d, init } => (d.expect("checked"), *init),
                Gate::Latch { d, init, .. } => (d.expect("checked"), *init),
                _ => unreachable!("only state elements are assumed"),
            };
            // An enabled latch that never updates would also be constant,
            // but we conservatively require the data input to agree.
            if konst[d.index()] != Some(init) {
                assumed[id.index()] = None;
                demoted = true;
            }
        }
        if !demoted {
            break konst;
        }
    };

    // --- pass 2: alias resolution (follow buffers/wires/1-input gates) ---
    let resolve = |start: NetId, konst: &[Option<bool>]| -> NetId {
        let mut cur = start;
        for _ in 0..n {
            if konst[cur.index()].is_some() {
                return cur;
            }
            cur = match netlist.gate(cur) {
                Gate::Buf(a) => *a,
                Gate::Wire { src } => src.expect("checked"),
                Gate::And(v) | Gate::Or(v) if v.len() == 1 => v[0],
                _ => return cur,
            };
        }
        cur
    };

    // --- pass 3: liveness from outputs (and state kept alive by itself) ---
    let mut live = vec![false; n];
    let mut stack: Vec<NetId> = netlist.outputs().to_vec();
    // Keep all primary inputs as interface, but they carry no logic.
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        if konst[id.index()].is_some() {
            continue; // a constant net needs none of its fan-in
        }
        let deps: Vec<NetId> = match netlist.gate(id) {
            Gate::Dff { d, .. } => vec![d.expect("checked")],
            Gate::Latch { d, en, .. } => {
                let mut v = vec![d.expect("checked")];
                if let Some(e) = en {
                    v.push(*e);
                }
                v
            }
            g => g.comb_inputs(),
        };
        stack.extend(deps);
    }

    // --- rebuild ---
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NetId>> = vec![None; n];
    let mut const_nets: HashMap<bool, NetId> = HashMap::new();
    // Inputs first (interface preserved in order).
    for &i in netlist.inputs() {
        let ni = out.input(netlist.net_name(i));
        map[i.index()] = Some(ni);
    }
    // Everything live, in creation order (sources precede users except for
    // state loops, which are re-bound afterwards).
    let mut rebind: Vec<(NetId, NetId)> = Vec::new(); // (new q, old d)
    let mut wire_rebind: Vec<(NetId, NetId)> = Vec::new(); // (new wire, old src)
    for id in netlist.nets() {
        if !live[id.index()] || map[id.index()].is_some() {
            continue;
        }
        if let Some(v) = konst[id.index()] {
            let c = *const_nets.entry(v).or_insert_with(|| out.constant(v));
            map[id.index()] = Some(c);
            continue;
        }
        let target = resolve(id, &konst);
        if target != id {
            // Alias: reuse the target's new id (created earlier or later).
            if let Some(&Some(t)) = map.get(target.index()) {
                map[id.index()] = Some(t);
            } else if konst[target.index()].is_some() {
                let v = konst[target.index()].expect("checked");
                let c = *const_nets.entry(v).or_insert_with(|| out.constant(v));
                map[id.index()] = Some(c);
            } else {
                // Target not yet emitted (forward reference through a bound
                // wire): emit a wire now and bind it after the main pass.
                let wirenew = out.wire();
                wire_rebind.push((wirenew, target));
                map[id.index()] = Some(wirenew);
            }
            continue;
        }
        let new = match netlist.gate(id).clone() {
            Gate::Input => unreachable!("inputs handled above"),
            Gate::Const(v) => *const_nets.entry(v).or_insert_with(|| out.constant(v)),
            Gate::Buf(_) | Gate::Wire { .. } => unreachable!("aliases resolved above"),
            Gate::Not(a) => {
                let a = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a);
                out.not(a)
            }
            Gate::And(v) => {
                let ins: Vec<NetId> = v
                    .into_iter()
                    .filter(|&a| konst[resolve(a, &konst).index()] != Some(true))
                    .map(|a| lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a))
                    .collect();
                match ins.len() {
                    0 => *const_nets.entry(true).or_insert_with(|| out.constant(true)),
                    1 => ins[0],
                    _ => out.and(ins),
                }
            }
            Gate::Or(v) => {
                let ins: Vec<NetId> = v
                    .into_iter()
                    .filter(|&a| konst[resolve(a, &konst).index()] != Some(false))
                    .map(|a| lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a))
                    .collect();
                match ins.len() {
                    0 => *const_nets
                        .entry(false)
                        .or_insert_with(|| out.constant(false)),
                    1 => ins[0],
                    _ => out.or(ins),
                }
            }
            Gate::Xor(a, b) => {
                let (ka, kb) = (
                    konst[resolve(a, &konst).index()],
                    konst[resolve(b, &konst).index()],
                );
                match (ka, kb) {
                    (Some(true), _) => {
                        let b = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, b);
                        out.not(b)
                    }
                    (Some(false), _) => {
                        lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, b)
                    }
                    (_, Some(true)) => {
                        let a = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a);
                        out.not(a)
                    }
                    (_, Some(false)) => {
                        lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a)
                    }
                    _ => {
                        let a = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a);
                        let b = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, b);
                        out.xor(a, b)
                    }
                }
            }
            Gate::Mux { sel, a, b } => {
                let ks = konst[resolve(sel, &konst).index()];
                match ks {
                    Some(true) => lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a),
                    Some(false) => lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, b),
                    None => {
                        let s = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, sel);
                        let a = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, a);
                        let b = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, b);
                        out.mux(s, a, b)
                    }
                }
            }
            Gate::Dff { d, init } => {
                let q = out.dff(init);
                rebind.push((q, d.expect("checked")));
                q
            }
            Gate::Latch { d, en, phase, init } => {
                let q = match en {
                    Some(e) => {
                        let e = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, e);
                        out.latch_en(phase, e, init)
                    }
                    None => out.latch(phase, init),
                };
                rebind.push((q, d.expect("checked")));
                q
            }
        };
        map[id.index()] = Some(new);
    }
    // Second pass: bind state data inputs (feedback loops legal now).
    for (q, old_d) in rebind {
        let d = lookup(netlist, &mut out, &mut map, &mut const_nets, &konst, old_d);
        match out.gate(q) {
            Gate::Dff { .. } => out.bind_dff(q, d)?,
            _ => out.bind_latch(q, d)?,
        }
    }
    for (wirenew, old_src) in wire_rebind {
        let src = lookup(
            netlist,
            &mut out,
            &mut map,
            &mut const_nets,
            &konst,
            old_src,
        );
        out.bind_wire(wirenew, src)?;
    }
    // Names and outputs. When several old nets merged into one new net, the
    // first name (in creation order) stays on the net itself; every further
    // name goes on a zero-area alias buffer, so probes and model-checking
    // atoms keep working after optimization.
    let mut named_new: std::collections::HashSet<NetId> = out.inputs().iter().copied().collect();
    for (name, id) in netlist.named_nets() {
        if let Some(new) = map[id.index()] {
            if out.find(name).is_ok() {
                continue; // the name survived already (e.g. on an input)
            }
            if named_new.insert(new) {
                let _ = out.set_name(new, name);
            } else {
                let alias = out.buf(new);
                out.set_name(alias, name)?;
                map[id.index()] = Some(alias);
            }
        }
    }
    for &o in netlist.outputs() {
        if let Some(new) = map[o.index()] {
            out.mark_output(new)?;
        }
    }
    Ok((out, map))
}

/// Observability-aware variant of [`optimize`]: simplifies `netlist` as if
/// only the nets in `observed` (plus the primary-input interface) were
/// visible, so dead-code elimination keeps exactly the cones — through
/// combinational logic *and* state — that can influence an observed net.
///
/// This is the front end of the Monte-Carlo execution pipeline: a compiled
/// elastic controller is full of logic that exists only for exporters,
/// probes or unobserved channels (payload registers behind non-guard
/// channels, negative rails of passive interfaces, `.en`/`.go` scratch
/// outputs), and a throughput experiment observing a single channel's
/// `V⁺/S⁺/V⁻` rails does not need to simulate any of it.
///
/// Returns the optimized netlist and the old→new net map; every net in
/// `observed` is guaranteed to map to `Some` (it is re-marked as an output,
/// possibly on a folded constant).
///
/// # Errors
///
/// [`NetlistError::UnknownNet`] if an observed net is out of range, plus
/// everything [`optimize`] can return.
pub fn optimize_observed(
    netlist: &Netlist,
    observed: &[NetId],
) -> Result<(Netlist, Vec<Option<NetId>>), NetlistError> {
    let mut scoped = netlist.clone();
    scoped.set_outputs(observed)?;
    optimize(&scoped)
}

/// Maps an old net id to the new netlist, materializing constants on
/// demand. Walks the alias chain (buffers, bound wires, 1-input AND/OR) and
/// stops at the first node that is constant or already materialized — a
/// forward reference through a wire resolves to the deferred wire emitted
/// for it, which is bound at the end of the rebuild.
fn lookup(
    old: &Netlist,
    out: &mut Netlist,
    map: &mut [Option<NetId>],
    const_nets: &mut HashMap<bool, NetId>,
    konst: &[Option<bool>],
    x: NetId,
) -> NetId {
    let mut cur = x;
    for _ in 0..=map.len() {
        if let Some(v) = konst[cur.index()] {
            return *const_nets.entry(v).or_insert_with(|| out.constant(v));
        }
        if let Some(id) = map[cur.index()] {
            return id;
        }
        cur = match old.gate(cur) {
            Gate::Buf(a) => *a,
            Gate::Wire { src } => src.expect("checked"),
            Gate::And(v) | Gate::Or(v) if v.len() == 1 => v[0],
            _ => break,
        };
    }
    unreachable!("combinational dependency {x} not emitted before use")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaReport;
    use crate::sim::Simulator;

    #[test]
    fn folds_constants_through_gates() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let zero = n.constant(false);
        let one = n.constant(true);
        let x = n.and2(a, one); // = a
        let y = n.or2(x, zero); // = a
        let z = n.xor(y, zero); // = a
        let w = n.mux(one, z, zero); // = a
        n.set_name(w, "w").unwrap();
        n.mark_output(w).unwrap();
        let (opt, _) = optimize(&n).unwrap();
        assert_eq!(AreaReport::of(&opt).literals, 0, "{opt:?}");
        // Behaviour preserved: w follows a.
        let mut sim = Simulator::new(&opt).unwrap();
        let a2 = opt.find("a").unwrap();
        let w2 = opt.find("w").unwrap();
        sim.cycle(&[(a2, true)]).unwrap();
        assert!(sim.value(w2));
        sim.cycle(&[(a2, false)]).unwrap();
        assert!(!sim.value(w2));
    }

    #[test]
    fn sequential_constants_fold() {
        // FF with d = q & 0 and init 0: constant zero forever.
        let mut n = Netlist::new("m");
        let q = n.dff(false);
        let zero = n.constant(false);
        let d = n.and2(q, zero);
        n.bind_dff(q, d).unwrap();
        let a = n.input("a");
        let y = n.or2(a, q); // = a
        n.set_name(y, "y").unwrap();
        n.mark_output(y).unwrap();
        let (opt, _) = optimize(&n).unwrap();
        let r = AreaReport::of(&opt);
        assert_eq!(r.flipflops, 0, "sequential constant removed");
        assert_eq!(r.literals, 0);
    }

    #[test]
    fn dead_logic_removed() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let dead = n.and2(a, b);
        let deader = n.not(dead);
        let _ = deader;
        let live = n.or2(a, b);
        n.mark_output(live).unwrap();
        let (opt, map) = optimize(&n).unwrap();
        assert_eq!(AreaReport::of(&opt).literals, 2);
        assert!(map[dead.index()].is_none());
    }

    #[test]
    fn live_state_survives() {
        let mut n = Netlist::new("m");
        let q = n.dff(false);
        let d = n.not(q);
        n.bind_dff(q, d).unwrap();
        n.set_name(q, "q").unwrap();
        n.mark_output(q).unwrap();
        let (opt, _) = optimize(&n).unwrap();
        assert_eq!(AreaReport::of(&opt).flipflops, 1);
        // Still toggles.
        let mut sim = Simulator::new(&opt).unwrap();
        let q2 = opt.find("q").unwrap();
        sim.cycle(&[]).unwrap();
        assert!(!sim.value(q2));
        sim.cycle(&[]).unwrap();
        assert!(sim.value(q2));
    }

    #[test]
    fn wires_collapse() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let w = n.wire();
        n.bind_wire(w, a).unwrap();
        let y = n.not(w);
        n.set_name(y, "y").unwrap();
        n.mark_output(y).unwrap();
        let (opt, _) = optimize(&n).unwrap();
        // Only input + NOT remain.
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn names_preserved_on_constants() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let zero = n.constant(false);
        let y = n.and2(a, zero);
        n.set_name(y, "y").unwrap();
        n.mark_output(y).unwrap();
        let (opt, _) = optimize(&n).unwrap();
        let y2 = opt.find("y").unwrap();
        assert!(matches!(opt.gate(y2), Gate::Const(false)));
    }

    #[test]
    fn observed_cone_drops_unobserved_logic() {
        // Two independent cones; observing only one must drop the other —
        // including its flip-flop — while the observed cone stays
        // cycle-exact and every observed net maps to Some.
        let mut n = Netlist::new("obs");
        let a = n.input("a");
        let b = n.input("b");
        let q_live = n.dff(false);
        let d_live = n.xor(q_live, a);
        n.bind_dff(q_live, d_live).unwrap();
        let q_dead = n.dff(false);
        let d_dead = n.xor(q_dead, b);
        n.bind_dff(q_dead, d_dead).unwrap();
        let watched = n.or2(q_live, a);
        n.mark_output(watched).unwrap();
        n.mark_output(q_dead).unwrap(); // would keep it alive...
        let (opt, map) = optimize_observed(&n, &[watched]).unwrap(); // ...but we observe less
        assert!(map[watched.index()].is_some());
        assert!(map[q_dead.index()].is_none(), "unobserved cone dropped");
        assert_eq!(AreaReport::of(&opt).flipflops, 1);
        // Inputs survive as interface even when dead.
        assert_eq!(opt.inputs().len(), 2);
        // Behaviour of the observed net is preserved.
        let w2 = map[watched.index()].unwrap();
        let mut s1 = Simulator::new(&n).unwrap();
        let mut s2 = Simulator::new(&opt).unwrap();
        let a2 = opt.find("a").unwrap();
        for t in 0..16u64 {
            let v = t % 3 == 0;
            s1.cycle(&[(a, v), (b, t % 2 == 0)]).unwrap();
            s2.cycle(&[(a2, v)]).unwrap();
            assert_eq!(s1.value(watched), s2.value(w2), "cycle {t}");
        }
    }

    #[test]
    fn random_equivalence_after_optimization() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // A small random sequential circuit; optimized version must match
        // the original cycle by cycle on random stimulus.
        let mut n = Netlist::new("rand");
        let i0 = n.input("i0");
        let i1 = n.input("i1");
        let one = n.constant(true);
        let q0 = n.dff(false);
        let q1 = n.dff(true);
        let x = n.xor(i0, q0);
        let y = n.and([i1, q1, one]);
        let z = n.or2(x, y);
        let m = n.mux(q0, z, i1);
        n.bind_dff(q0, z).unwrap();
        n.bind_dff(q1, m).unwrap();
        n.set_name(z, "z").unwrap();
        n.set_name(m, "m").unwrap();
        n.mark_output(z).unwrap();
        n.mark_output(m).unwrap();
        let (opt, _) = optimize(&n).unwrap();
        let mut s1 = Simulator::new(&n).unwrap();
        let mut s2 = Simulator::new(&opt).unwrap();
        let (oi0, oi1) = (opt.find("i0").unwrap(), opt.find("i1").unwrap());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let (a, b) = (rng.gen_bool(0.5), rng.gen_bool(0.5));
            s1.cycle(&[(i0, a), (i1, b)]).unwrap();
            s2.cycle(&[(oi0, a), (oi1, b)]).unwrap();
            for name in ["z", "m"] {
                assert_eq!(
                    s1.value(n.find(name).unwrap()),
                    s2.value(opt.find(name).unwrap()),
                    "mismatch on {name}"
                );
            }
        }
    }
}
