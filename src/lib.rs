//! Umbrella crate for the DAC 2007 elastic-circuits reproduction.
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`dmg`] — dual marked graphs (the behavioural model).
//! * [`netlist`] — gate-level netlists, simulation, area, exporters.
//! * [`mc`] — CTL model checking with fairness.
//! * [`core`] — the SELF elastic controllers with early evaluation and
//!   token counterflow, the paper's contribution.

pub use elastic_core as core;
pub use elastic_dmg as dmg;
pub use elastic_mc as mc;
pub use elastic_netlist as netlist;
