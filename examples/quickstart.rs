//! Quickstart: build a small elastic pipeline, run it against a random
//! environment, and read the channel statistics.
//!
//! Run with `cargo run --example quickstart`.

use elastic_circuits::core::dsl::Dsl;
use elastic_circuits::core::sim::{BehavSim, EnvConfig, RandomEnv, SinkCfg, SourceCfg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A producer, two elastic buffers, a consumer — channels are linear
    // values, so every port is connected exactly once by construction.
    let mut d = Dsl::new("quickstart");
    let src = d.source("producer")?;
    let fifo = d.buffer("fifo", 2, 0, src.label("in"))?;
    let out = d.sink("consumer", fifo.label("out"))?;
    let net = d.finish()?;
    let snk = net.component_by_name("consumer").expect("just added");

    // The consumer back-pressures 30% of the time.
    let mut cfg = EnvConfig::default();
    cfg.sources.insert(
        "producer".into(),
        SourceCfg {
            rate: 0.9,
            data: elastic_circuits::core::sim::DataGen::Counter,
        },
    );
    cfg.sinks.insert(
        "consumer".into(),
        SinkCfg {
            stop_prob: 0.3,
            kill_prob: 0.0,
        },
    );

    let mut sim = BehavSim::new(&net)?;
    let mut env = RandomEnv::new(42, cfg);
    sim.run(&mut env, 10_000)?;

    let report = sim.report();
    println!("{report}");
    println!(
        "output throughput: {:.3} tokens/cycle",
        report.positive_rate(out)
    );
    println!("FIFO order preserved: {:?}", &sim.sink_received(snk)[..8]);
    Ok(())
}
