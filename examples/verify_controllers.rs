//! Formal verification demo: compile elastic controllers to gates and
//! model-check the paper's four CTL properties (Sect. 5) with the built-in
//! explicit-state checker.
//!
//! Run with `cargo run --example verify_controllers`.

use elastic_circuits::core::systems::linear_pipeline;
use elastic_circuits::core::verify::check_network_properties;
use elastic_circuits::mc::BridgeOptions;
use elastic_circuits::netlist::export::to_smv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (net, _, _) = linear_pipeline(2, 1)?;
    let (results, states) = check_network_properties(&net, BridgeOptions::default())?;
    println!("explored {states} states of the two-buffer pipeline\n");
    for r in &results {
        println!(
            "[{}] {:<10} {}",
            if r.holds { "ok" } else { "FAIL" },
            r.property,
            r.formula
        );
    }
    assert!(results.iter().all(|r| r.holds));

    // The same netlist exports to SMV for an external checker (NuSMV).
    let compiled = elastic_circuits::core::compile::compile(
        &net,
        &elastic_circuits::core::compile::CompileOptions::default(),
    )?;
    let smv = to_smv(&compiled.netlist)?;
    println!("\nSMV model (first lines):");
    for line in smv.lines().take(10) {
        println!("  {line}");
    }
    Ok(())
}
