//! Dual-marked-graph semantics walkthrough (the paper's Fig. 1): positive,
//! early and negative firings, token preservation on cycles, and the
//! reachable marking with anti-tokens.
//!
//! Run with `cargo run --example dmg_semantics`.

use elastic_circuits::dmg::analysis::{check_token_preservation, simple_cycles};
use elastic_circuits::dmg::examples::{fig1_dmg, fig1_firing_sequence};
use elastic_circuits::dmg::exec::{format_trace, RandomExecutor, SchedulingPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (g, rules, m) = fig1_firing_sequence();
    let tags: String = rules.iter().map(|r| r.tag()).collect();
    println!("paper firing sequence n2,n1,n7 used rules [{tags}]");
    println!("reached marking: {}", g.format_marking(&m));

    // Random execution preserves every cycle's token sum.
    let g = fig1_dmg();
    let report = check_token_preservation(&g, 1000, 7)?;
    println!(
        "\n1000 random firings: cycle sums stayed {:?}",
        report.initial_sums
    );

    // An aggressive early policy exercises counterflow heavily.
    let mut m = g.initial_marking();
    let mut exec = RandomExecutor::new(3, SchedulingPolicy::EarlyFirst);
    let trace = exec.run(&g, &mut m, 12)?;
    println!("early-first trace: {}", format_trace(&g, &trace));
    let (cycles, _) = simple_cycles(&g, 10);
    for (i, c) in cycles.iter().enumerate() {
        println!("cycle C{}: sum {}", i + 1, c.tokens(&m));
    }
    Ok(())
}
