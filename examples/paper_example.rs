//! The paper's example system (Fig. 9) in all five Table 1 configurations:
//! throughput, counterflow statistics and control-layer area.
//!
//! Run with `cargo run --example paper_example`.

use elastic_circuits::core::compile::{compile, CompileOptions};
use elastic_circuits::core::dmg_bridge::lazy_throughput_bound;
use elastic_circuits::core::sim::{BehavSim, RandomEnv};
use elastic_circuits::core::systems::{paper_example, Config};
use elastic_circuits::netlist::area::AreaReport;
use elastic_circuits::netlist::opt::optimize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for config in Config::all() {
        let sys = paper_example(config)?;
        let mut sim = BehavSim::new(&sys.network)?;
        let mut env = RandomEnv::new(7, sys.env_config.clone());
        sim.run(&mut env, 10_000)?;
        let th = sim.report().positive_rate(sys.output_channel);
        let compiled = compile(
            &sys.network,
            &CompileOptions {
                lint: false,
                data_width: 2,
                nondet_merge: false,
                optimize: false,
                fault: None,
                faults: vec![],
            },
        )?;
        let (opt, _) = optimize(&compiled.netlist)?;
        println!(
            "{:<22} Th {th:.3}   control area: {}",
            config.label(),
            AreaReport::of(&opt)
        );
    }
    let sys = paper_example(Config::NoEarlyEval)?;
    let bound = lazy_throughput_bound(&sys.network, &sys.env_config)?;
    println!(
        "\nlazy marked-graph bound: {:.3} (critical cycle {:?})",
        bound.bound, bound.critical
    );
    println!("the active configuration beats it — that is early evaluation at work.");
    Ok(())
}
