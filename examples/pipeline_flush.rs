//! Anti-token pipeline flush — the application sketched in the paper's
//! conclusions: "flushing a pipeline on branch mispredictions can be done
//! by injecting anti-tokens".
//!
//! A 6-stage speculative pipeline runs at full rate; on a misprediction
//! the consumer injects anti-tokens that travel backwards and annihilate
//! the speculative tokens in flight, and the correct-path tokens follow.
//!
//! Run with `cargo run --example pipeline_flush`.

use elastic_circuits::core::network::CompId;
use elastic_circuits::core::sim::{BehavSim, Environment};
use elastic_circuits::core::systems::linear_pipeline;

/// A scripted environment: the front end fetches continuously; the commit
/// stage flushes `flushes` speculative instructions at cycle 20.
struct FlushEnv {
    flushes_left: u32,
    issued: u64,
}

impl Environment for FlushEnv {
    fn source_offer(&mut self, _c: CompId, _n: &str, _t: u64) -> Option<u64> {
        self.issued += 1;
        Some(self.issued)
    }
    fn sink_stop(&mut self, _c: CompId, _n: &str, _t: u64) -> bool {
        false
    }
    fn sink_kill(&mut self, _c: CompId, _n: &str, t: u64) -> bool {
        if (20..40).contains(&t) && self.flushes_left > 0 {
            self.flushes_left -= 1;
            true
        } else {
            false
        }
    }
    fn vl_latency(&mut self, _c: CompId, _n: &str, _t: u64) -> u32 {
        1
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (net, _cin, _cout) = linear_pipeline(6, 0)?;
    let snk = net.component_by_name("snk").expect("sink exists");
    let mut sim = BehavSim::new(&net)?;
    let mut env = FlushEnv {
        flushes_left: 4,
        issued: 0,
    };
    sim.run(&mut env, 100)?;
    let r = sim.report();
    println!("6-stage speculative pipeline, 4 anti-token flushes at cycle 20:");
    println!("{r}");
    let received = sim.sink_received(snk);
    // No instruction is duplicated and order is preserved; exactly the
    // flushed ones are missing.
    let mut prev = 0;
    for &d in received {
        assert!(d > prev, "order preserved, no duplication");
        prev = d;
    }
    let killed: u64 =
        net.channels().map(|c| r.channel(c).kills).sum::<u64>() + r.internal_annihilations;
    println!(
        "committed {} instructions; {} speculative ones annihilated in flight",
        received.len(),
        killed
    );
    Ok(())
}
